//! The binding refinement of Sect. V-B.3 (Fig. 6).
//!
//! The transition rule `r3 = (S, M⊥, φ, 0)` of a category-(C) automaton does
//! not expose *which* values the process has seen, which makes the binding
//! conditions inexpressible.  The refinement replaces `r3` by intermediate
//! locations `N0`, `N1`, `N⊥` whose entry guards record whether a 0-vote, a
//! 1-vote, or neither has been received, followed by unguarded rules into
//! `M⊥`.

use crate::error::ModelError;
use crate::expr::LinearExpr;
use crate::guard::Guard;
use crate::location::{LocClass, LocId, Location, Owner};
use crate::rule::{Rule, RuleId, Update};
use crate::system::SystemModel;
use crate::variable::VarId;

/// The locations introduced by [`refine_for_binding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefinedLocations {
    /// Location `N0`: the process saw support for value 0 before entering `M⊥`.
    pub n0: LocId,
    /// Location `N1`: the process saw support for value 1 before entering `M⊥`.
    pub n1: LocId,
    /// Location `N⊥`: the process saw support for neither value.
    pub nbot: LocId,
}

/// One refinement case: a new intermediate location plus the extra guard
/// conjuncts added to the original rule's guard.
#[derive(Debug, Clone)]
pub struct RefinementCase {
    /// Name of the new intermediate location.
    pub location_name: String,
    /// Additional guard conjoined with the original rule guard.
    pub extra_guard: Guard,
}

impl RefinementCase {
    /// Creates a refinement case.
    pub fn new(location_name: impl Into<String>, extra_guard: Guard) -> Self {
        RefinementCase {
            location_name: location_name.into(),
            extra_guard,
        }
    }
}

fn conjoin(base: &Guard, extra: &Guard) -> Guard {
    let mut g = base.clone();
    for atom in extra.atoms() {
        g = g.and(atom.clone());
    }
    g
}

/// Replaces the Dirac rule `rule = (S, M, φ, u)` with one two-step path per
/// case: `(S, Nᵢ, φ ∧ ψᵢ, u)` followed by `(Nᵢ, M, true, 0)`.
///
/// Returns the refined model together with the ids of the new intermediate
/// locations, in case order.
///
/// # Errors
///
/// Returns an error if `rule` is not a Dirac, non-round-switch rule of the
/// process automaton, or if the refined model fails validation.
pub fn refine_rule_with_cases(
    model: &SystemModel,
    rule: RuleId,
    cases: &[RefinementCase],
) -> Result<(SystemModel, Vec<LocId>), ModelError> {
    let original = model.rule(rule).clone();
    if original.owner() != Owner::Process || original.is_round_switch() {
        return Err(ModelError::UnknownEntity {
            name: format!("refinable process rule {}", original.name()),
        });
    }
    let target = original
        .dirac_to()
        .ok_or_else(|| ModelError::UnknownEntity {
            name: format!("Dirac rule {}", original.name()),
        })?;

    let mut locations: Vec<Location> = model.locations().to_vec();
    let mut new_locs = Vec::with_capacity(cases.len());
    for case in cases {
        locations.push(Location::new(
            case.location_name.clone(),
            LocClass::Intermediate,
            None,
            false,
            Owner::Process,
        ));
        new_locs.push(LocId(locations.len() - 1));
    }

    let mut rules: Vec<Rule> = Vec::with_capacity(model.rules().len() + 2 * cases.len());
    for (i, r) in model.rules().iter().enumerate() {
        if i == rule.0 {
            continue;
        }
        rules.push(r.clone());
    }
    for (i, case) in cases.iter().enumerate() {
        let guard = conjoin(original.guard(), &case.extra_guard);
        rules.push(Rule::dirac(
            format!("{}_{}", original.name(), case.location_name),
            original.from(),
            new_locs[i],
            guard,
            original.update().clone(),
            Owner::Process,
        ));
        rules.push(Rule::dirac(
            format!("{}_from_{}", original.name(), case.location_name),
            new_locs[i],
            target,
            Guard::top(),
            Update::none(),
            Owner::Process,
        ));
    }

    let refined = SystemModel::new(
        format!("{}_refined", model.name()),
        model.env().clone(),
        model.vars().to_vec(),
        locations,
        rules,
        model.kind(),
    )?;
    Ok((refined, new_locs))
}

/// The literal Fig. 6 refinement: given the rule `r3 = (S, M⊥, φ, 0)` and the
/// shared variables `m0`, `m1` counting received 0- and 1-votes, introduces
///
/// * `rᴬ₃ = (S, N0, φ ∧ m0 > 0, 0)`
/// * `rᴮ₃ = (S, N1, φ ∧ m1 > 0, 0)`
/// * `rᶜ₃ = (S, N⊥, φ ∧ m0 = 0 ∧ m1 = 0, 0)`
/// * `rⁱ₃ = (Nᵢ, M⊥, true, 0)` for `i ∈ {0, 1, ⊥}`.
///
/// # Errors
///
/// See [`refine_rule_with_cases`].
pub fn refine_for_binding(
    model: &SystemModel,
    rule: RuleId,
    m0: VarId,
    m1: VarId,
) -> Result<(SystemModel, RefinedLocations), ModelError> {
    let k = model.env().num_params();
    let one = LinearExpr::constant(k, 1);
    let cases = vec![
        RefinementCase::new("N0", Guard::ge(m0, one.clone())),
        RefinementCase::new("N1", Guard::ge(m1, one.clone())),
        RefinementCase::new("Nbot", Guard::lt(m0, one.clone()).and_lt(m1, one)),
    ];
    let (refined, locs) = refine_rule_with_cases(model, rule, &cases)?;
    Ok((
        refined,
        RefinedLocations {
            n0: locs[0],
            n1: locs[1],
            nbot: locs[2],
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use crate::env::byzantine_common_coin_env;
    use crate::location::BinValue;

    /// A minimal category-(C)-shaped model: S -> {M0, M1, Mbot} on vote
    /// thresholds, then a final location.
    fn crusader_model() -> (SystemModel, RuleId, VarId, VarId) {
        let env = byzantine_common_coin_env(3);
        let k = env.num_params();
        let n = env.param_id("n").unwrap();
        let t = env.param_id("t").unwrap();
        let f = env.param_id("f").unwrap();
        let mut b = SystemBuilder::new("crusader", env.clone());
        let m0 = b.shared_var("m0");
        let m1 = b.shared_var("m1");
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
        let s = b.process_location("S", LocClass::Intermediate, None);
        let mbot = b.process_location("Mbot", LocClass::Intermediate, None);
        let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
        let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));
        b.start_rule(j0, i0);
        b.start_rule(j1, i1);
        b.rule("vote0", i0, s, Guard::top(), Update::increment(m0));
        b.rule("vote1", i1, s, Guard::top(), Update::increment(m1));
        let quorum = LinearExpr::param(k, n)
            .sub(&LinearExpr::param(k, t))
            .sub(&LinearExpr::param(k, f));
        // r3: S -> Mbot when m0 + m1 >= n - t - f
        let r3 = b.rule(
            "r3",
            s,
            mbot,
            Guard::sum_ge(&[m0, m1], quorum.clone()),
            Update::none(),
        );
        b.rule("out0", s, e0, Guard::ge(m0, quorum.clone()), Update::none());
        b.rule("out1", s, e1, Guard::ge(m1, quorum), Update::none());
        b.rule("settle0", mbot, e0, Guard::top(), Update::none());
        b.round_switch(e0, j0);
        b.round_switch(e1, j1);
        let model = b.build().unwrap();
        (model, r3, m0, m1)
    }

    #[test]
    fn binding_refinement_adds_three_locations_and_six_rules() {
        let (model, r3, m0, m1) = crusader_model();
        let before_locs = model.locations().len();
        let before_rules = model.rules().len();
        let (refined, locs) = refine_for_binding(&model, r3, m0, m1).unwrap();
        assert_eq!(refined.locations().len(), before_locs + 3);
        assert_eq!(refined.rules().len(), before_rules - 1 + 6);
        assert_eq!(refined.location(locs.n0).name(), "N0");
        assert_eq!(refined.location(locs.n1).name(), "N1");
        assert_eq!(refined.location(locs.nbot).name(), "Nbot");
        // the original r3 is gone
        assert!(refined.rule_id("r3").is_none());
        assert!(refined.rule_id("r3_N0").is_some());
        assert!(refined.rule_id("r3_from_N0").is_some());
    }

    #[test]
    fn refined_guards_strengthen_the_original_guard() {
        let (model, r3, m0, m1) = crusader_model();
        let (refined, locs) = refine_for_binding(&model, r3, m0, m1).unwrap();
        let ra = refined.rule_id("r3_N0").unwrap();
        let rule = refined.rule(ra);
        // original guard had one atom, refined has two
        assert_eq!(rule.guard().atoms().len(), 2);
        // S -> N0, followed by N0 -> Mbot
        assert_eq!(rule.dirac_to(), Some(locs.n0));
        let from_n0 = refined.rule_id("r3_from_N0").unwrap();
        assert_eq!(
            refined.rule(from_n0).dirac_to(),
            Some(refined.location_id("Mbot").unwrap())
        );
        // the Nbot case carries two extra atoms (m0 < 1 and m1 < 1)
        let rc = refined.rule_id("r3_Nbot").unwrap();
        assert_eq!(refined.rule(rc).guard().atoms().len(), 3);
        let _ = locs;
    }

    #[test]
    fn refinement_rejects_round_switch_rules() {
        let (model, _r3, m0, m1) = crusader_model();
        let switch = model
            .rule_ids()
            .find(|&r| model.rule(r).is_round_switch())
            .unwrap();
        assert!(refine_for_binding(&model, switch, m0, m1).is_err());
    }

    #[test]
    fn custom_cases_refinement() {
        let (model, r3, m0, _m1) = crusader_model();
        let k = model.env().num_params();
        let cases = vec![
            RefinementCase::new("Strong0", Guard::ge(m0, LinearExpr::constant(k, 2))),
            RefinementCase::new("Weak0", Guard::lt(m0, LinearExpr::constant(k, 2))),
        ];
        let (refined, locs) = refine_rule_with_cases(&model, r3, &cases).unwrap();
        assert_eq!(locs.len(), 2);
        assert_eq!(refined.location(locs[0]).name(), "Strong0");
        assert!(refined.rule_id("r3_Weak0").is_some());
    }
}
