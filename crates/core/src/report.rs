//! Rendering the evaluation tables of the paper.

use crate::obligations::obligations_for;
use crate::verifier::{PropertyResult, ProtocolVerification};
use ccchecker::{max_schema_count, milestones, schema_count, CheckStatus};
use ccprotocols::ProtocolModel;
use ccta::SystemModel;
use std::fmt::Write as _;

fn property_cell(result: &PropertyResult) -> (String, String) {
    match result.status {
        CheckStatus::Violated => ("-".to_string(), "CE".to_string()),
        CheckStatus::Unknown => ("?".to_string(), "unknown".to_string()),
        CheckStatus::Holds => (
            result.nschemas.to_string(),
            format!("{:.2}", result.time.as_secs_f64()),
        ),
    }
}

/// Renders the benchmark summary in the shape of Table II: per protocol the
/// automaton size and, per property, the schema-count cost metric and the
/// measured checking time (or `CE` when a counterexample was found).
pub fn render_table2(results: &[ProtocolVerification]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<4} {:>4} {:>4} | {:>12} {:>8} | {:>12} {:>8} | {:>12} {:>10}",
        "Name",
        "cat",
        "|L|",
        "|R|",
        "agr-schemas",
        "agr-time",
        "val-schemas",
        "val-time",
        "term-schemas",
        "term-time"
    );
    let _ = writeln!(out, "{}", "-".repeat(110));
    for r in results {
        let (agr_s, agr_t) = property_cell(&r.agreement);
        let (val_s, val_t) = property_cell(&r.validity);
        let (term_s, term_t) = property_cell(&r.termination);
        let _ = writeln!(
            out,
            "{:<10} {:<4} {:>4} {:>4} | {:>12} {:>8} | {:>12} {:>8} | {:>12} {:>10}",
            r.protocol,
            r.category.label(),
            r.stats.process_locations,
            r.stats.process_rules,
            agr_s,
            agr_t,
            val_s,
            val_t,
            term_s,
            term_t
        );
    }
    out
}

/// Renders the property catalogue of a protocol in the shape of Table III.
pub fn render_table3(protocol: &ProtocolModel) -> String {
    let single_round = protocol.single_round();
    let obligations = obligations_for(protocol, &single_round);
    let mut out = String::new();
    let _ = writeln!(out, "Properties checked for {}:", protocol.name());
    let _ = writeln!(out, "{:<20} Formula", "Label");
    let _ = writeln!(out, "{}", "-".repeat(100));
    for spec in obligations.all() {
        let _ = writeln!(out, "{:<20} {}", spec.name(), spec.formula(&single_round));
    }
    out
}

/// One row of Table IV: a model variant, its milestone count and the maximum
/// schema count over the checked formulas.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Variant name (e.g. `"ABY22-2"`).
    pub name: String,
    /// Formula label (`"CB0"` or `"Inv2"`).
    pub formula: String,
    /// Number of milestones of the variant.
    pub milestones: usize,
    /// Maximum schema count for the formula on this variant.
    pub max_nschemas: u128,
}

/// Computes the Table IV rows for a family of model variants: for each
/// variant, the milestone count and the maximum schema count of its CB0-shaped
/// and Inv2-shaped obligations.
pub fn table4_rows(variants: &[(SystemModel, ProtocolModel)]) -> Vec<Table4Row> {
    let mut rows = Vec::new();
    for (variant, protocol) in variants {
        let single_round = variant
            .single_round()
            .expect("variants are multi-round models");
        let obligations = obligations_for(protocol, &single_round);
        let m = milestones(&single_round).len();
        for label in ["CB0", "Inv2"] {
            let specs: Vec<_> = obligations
                .all()
                .into_iter()
                .filter(|s| s.name().starts_with(label))
                .cloned()
                .collect();
            let max = if specs.is_empty() {
                0
            } else {
                max_schema_count(&single_round, specs.iter())
            };
            rows.push(Table4Row {
                name: variant.name().to_string(),
                formula: label.to_string(),
                milestones: m,
                max_nschemas: max,
            });
        }
    }
    rows
}

/// Renders Table IV (maximum schema counts for automata with different
/// milestone counts) from precomputed rows.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<8} {:>12} {:>16}",
        "Name", "Formula", "nmilestones", "max-nschemas"
    );
    let _ = writeln!(out, "{}", "-".repeat(50));
    for row in rows {
        let _ = writeln!(
            out,
            "{:<10} {:<8} {:>12} {:>16}",
            row.name, row.formula, row.milestones, row.max_nschemas
        );
    }
    out
}

/// Convenience: the schema count of a single named obligation of a protocol
/// (used by benchmarks).
pub fn obligation_schema_count(protocol: &ProtocolModel, obligation: &str) -> Option<u128> {
    let single_round = protocol.single_round();
    let obligations = obligations_for(protocol, &single_round);
    obligations
        .all()
        .into_iter()
        .find(|s| s.name() == obligation)
        .map(|s| schema_count(&single_round, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::{verify_protocol, VerifierConfig};
    use ccprotocols::{bstyle, fixed};

    #[test]
    fn table2_renders_rows_for_all_results() {
        let result = verify_protocol(&bstyle::cc85b(), &VerifierConfig::quick());
        let table = render_table2(&[result]);
        assert!(table.contains("CC85(b)"));
        assert!(table.contains("|L|"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn table3_lists_the_obligations() {
        let table = render_table3(&fixed::aby22());
        assert!(table.contains("Inv1(0)"));
        assert!(table.contains("CB2"));
        assert!(table.contains("A F(EX"));
    }

    #[test]
    fn table4_shows_decreasing_schema_counts() {
        let protocol = fixed::aby22();
        let variants: Vec<(SystemModel, ProtocolModel)> = fixed::aby22_variants()
            .into_iter()
            .map(|m| (m, protocol.clone()))
            .collect();
        let rows = table4_rows(&variants);
        assert_eq!(rows.len(), 10);
        let cb0: Vec<&Table4Row> = rows.iter().filter(|r| r.formula == "CB0").collect();
        // milestone counts strictly decrease across the variants
        for pair in cb0.windows(2) {
            assert!(pair[0].milestones > pair[1].milestones);
            assert!(pair[0].max_nschemas > pair[1].max_nschemas);
        }
        // the Inv2 formula has fewer schemas than CB0 on the same automaton
        let inv2_full = rows
            .iter()
            .find(|r| r.formula == "Inv2" && r.name == "ABY22")
            .unwrap();
        let cb0_full = rows
            .iter()
            .find(|r| r.formula == "CB0" && r.name == "ABY22")
            .unwrap();
        assert!(cb0_full.max_nschemas > inv2_full.max_nschemas);
        let rendered = render_table4(&rows);
        assert!(rendered.contains("ABY22-4"));
        assert!(rendered.contains("max-nschemas"));
    }

    #[test]
    fn obligation_schema_count_finds_named_obligations() {
        let p = fixed::aby22();
        assert!(obligation_schema_count(&p, "CB0").unwrap() > 0);
        assert!(obligation_schema_count(&p, "nonexistent").is_none());
    }
}
