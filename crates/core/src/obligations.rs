//! Deriving the single-round proof obligations of a protocol.
//!
//! Sect. V of the paper reduces the three consensus properties to queries on
//! the single-round automaton, with the exact set of queries depending on the
//! protocol category:
//!
//! | Property | (A) | (B) | (C) |
//! |---|---|---|---|
//! | Agreement | `Inv1(0)`, `Inv1(1)` | same | same |
//! | Validity | `Inv2(0)`, `Inv2(1)` | same | same |
//! | A.-s. Termination | `C1`, `C2(0)`, `C2(1)`, non-blocking | `C1`, `C2'(0)`, `C2'(1)`, non-blocking | `CB0`–`CB4`, `C2'(0)`, `C2'(1)`, non-blocking |

use ccchecker::{LocSet, Spec, StartRestriction};
use ccprotocols::ProtocolModel;
use ccta::{BinValue, LocId, Owner, ProtocolCategory, SystemModel};

/// The proof obligations of one protocol, grouped by the consensus property
/// they establish.
#[derive(Debug, Clone, PartialEq)]
pub struct Obligations {
    /// Queries establishing Agreement.
    pub agreement: Vec<Spec>,
    /// Queries establishing Validity.
    pub validity: Vec<Spec>,
    /// Queries establishing Almost-sure Termination under round-rigid
    /// adversaries.
    pub termination: Vec<Spec>,
}

impl Obligations {
    /// All queries in one list.
    pub fn all(&self) -> Vec<&Spec> {
        self.agreement
            .iter()
            .chain(self.validity.iter())
            .chain(self.termination.iter())
            .collect()
    }
}

fn loc_set_from_names(model: &SystemModel, name: &str, names: &[String]) -> LocSet {
    let locs: Vec<LocId> = names.iter().filter_map(|n| model.location_id(n)).collect();
    LocSet::new(name, locs)
}

/// Final process locations with the given value (`F_v`).
fn final_set(model: &SystemModel, v: BinValue) -> LocSet {
    LocSet::new(
        format!("F{}", v.index()),
        model.final_locations(Owner::Process, Some(v)),
    )
}

/// Decision locations with the given value (`D_v`).
fn decision_set(model: &SystemModel, v: BinValue) -> LocSet {
    LocSet::new(format!("D{}", v.index()), model.decision_locations(Some(v)))
}

/// Final process locations other than `D_v` (`F \ D_v`).
fn final_without_decisions(model: &SystemModel, v: BinValue) -> LocSet {
    let dv = model.decision_locations(Some(v));
    let locs: Vec<LocId> = model
        .final_locations(Owner::Process, None)
        .into_iter()
        .filter(|l| !dv.contains(l))
        .collect();
    LocSet::new(format!("F\\D{}", v.index()), locs)
}

/// Builds the proof obligations for a protocol.  The specs refer to locations
/// of `single_round`, which must be the single-round form of the protocol's
/// model (`protocol.single_round()`).
pub fn obligations_for(protocol: &ProtocolModel, single_round: &SystemModel) -> Obligations {
    let mut agreement = Vec::new();
    let mut validity = Vec::new();
    let mut termination = Vec::new();

    for v in BinValue::ALL {
        // (Inv1) once a process decides v, no process ever ends the round
        // with 1 - v.
        agreement.push(Spec::CoverNever {
            name: format!("Inv1({})", v.index()),
            start: StartRestriction::RoundStart,
            trigger: decision_set(single_round, v),
            forbidden: final_set(single_round, v.flip()),
        });
        // (Inv2) if no process starts the round with v, no process ends the
        // round with v — stated contrapositively over unanimous starts.
        validity.push(Spec::NeverFrom {
            name: format!("Inv2({})", v.index()),
            start: StartRestriction::Unanimous(v),
            forbidden: final_set(single_round, v.flip()),
        });
    }

    match protocol.category() {
        ProtocolCategory::A => {
            termination.push(c1(single_round));
            for v in BinValue::ALL {
                // (C2) with a unanimous start every process keeps the value.
                termination.push(Spec::NeverFrom {
                    name: format!("C2({})", v.index()),
                    start: StartRestriction::Unanimous(v),
                    forbidden: final_set(single_round, v.flip()),
                });
            }
        }
        ProtocolCategory::B => {
            termination.push(c1(single_round));
            termination.extend(c2_prime(single_round));
        }
        ProtocolCategory::C => {
            let crusader = protocol
                .crusader()
                .expect("category-(C) protocols carry crusader metadata");
            let m0 = loc_set_from_names(single_round, "M0", &crusader.m0);
            let m1 = loc_set_from_names(single_round, "M1", &crusader.m1);
            let n0 = loc_set_from_names(single_round, "N0", &crusader.n0);
            let n1 = loc_set_from_names(single_round, "N1", &crusader.n1);
            let nbot = loc_set_from_names(single_round, "Nbot", &crusader.nbot);
            let m01 = LocSet::new("M0M1", m0.locs().iter().chain(m1.locs()).copied().collect());
            let cover = |name: &str, trigger: &LocSet, forbidden: &LocSet| Spec::CoverNever {
                name: name.to_string(),
                start: StartRestriction::RoundStart,
                trigger: trigger.clone(),
                forbidden: forbidden.clone(),
            };
            termination.push(cover("CB0", &m0, &m1));
            termination.push(cover("CB1", &m1, &m0));
            termination.push(cover("CB2", &n0, &m1));
            termination.push(cover("CB3", &n1, &m0));
            termination.push(cover("CB4", &nbot, &m01));
            termination.extend(c2_prime(single_round));
        }
    }
    termination.push(Spec::NonBlocking {
        name: "round-termination".to_string(),
        start: StartRestriction::RoundStart,
    });

    Obligations {
        agreement,
        validity,
        termination,
    }
}

/// (C1) under every adversary some coin resolution lets every correct process
/// end the round with the same value.
fn c1(single_round: &SystemModel) -> Spec {
    Spec::ExistsAvoidOneOf {
        name: "C1".to_string(),
        start: StartRestriction::RoundStart,
        forbidden_sets: vec![
            final_set(single_round, BinValue::Zero),
            final_set(single_round, BinValue::One),
        ],
    }
}

/// (C2') with a unanimous start some coin resolution makes every correct
/// process decide that value in the round.
fn c2_prime(single_round: &SystemModel) -> Vec<Spec> {
    BinValue::ALL
        .iter()
        .map(|&v| Spec::ExistsAvoidOneOf {
            name: format!("C2'({})", v.index()),
            start: StartRestriction::Unanimous(v),
            forbidden_sets: vec![final_without_decisions(single_round, v)],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccprotocols::{bstyle, fixed, mmr14, rabin83};

    #[test]
    fn category_a_obligations() {
        let p = rabin83::rabin83();
        let rd = p.single_round();
        let obl = obligations_for(&p, &rd);
        assert_eq!(obl.agreement.len(), 2);
        assert_eq!(obl.validity.len(), 2);
        // C1, C2(0), C2(1), non-blocking
        assert_eq!(obl.termination.len(), 4);
        assert_eq!(obl.all().len(), 8);
        let names: Vec<&str> = obl.termination.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"C1"));
        assert!(names.contains(&"C2(0)"));
    }

    #[test]
    fn category_b_obligations_use_c2_prime() {
        let p = bstyle::cc85a();
        let rd = p.single_round();
        let obl = obligations_for(&p, &rd);
        let names: Vec<&str> = obl.termination.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["C1", "C2'(0)", "C2'(1)", "round-termination"]);
        // C2' queries are probabilistic (Lemma 2)
        assert!(obl.termination[1].is_probabilistic());
    }

    #[test]
    fn category_c_obligations_use_binding_conditions() {
        let p = fixed::aby22();
        let rd = p.single_round();
        let obl = obligations_for(&p, &rd);
        let names: Vec<&str> = obl.termination.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "CB0",
                "CB1",
                "CB2",
                "CB3",
                "CB4",
                "C2'(0)",
                "C2'(1)",
                "round-termination"
            ]
        );
    }

    #[test]
    fn location_sets_resolve_in_the_single_round_model() {
        let p = mmr14::mmr14();
        let rd = p.single_round();
        let obl = obligations_for(&p, &rd);
        for spec in obl.all() {
            // every formula should render without panicking and mention a
            // location name
            let formula = spec.formula(&rd);
            assert!(!formula.is_empty());
        }
        // the CB2 trigger is the refined N0 location
        let cb2 = obl.termination.iter().find(|s| s.name() == "CB2").unwrap();
        assert!(cb2.formula(&rd).contains("N0"));
    }
}
