//! The end-to-end verification driver.
//!
//! For a protocol, the driver builds the single-round automaton, derives the
//! proof obligations, selects a sweep of small admissible parameter
//! valuations, and checks every obligation on every valuation with the
//! explicit-state checker — the bounded-parameter substitute for running
//! ByMC on the fully parameterized system.

use crate::obligations::{obligations_for, Obligations};
use ccchecker::{
    check_over_sweep_cancellable, check_over_sweep_with_stats, schema_count, sweep_thread_budget,
    CancelToken, CheckStatus, CheckerOptions, Counterexample, GraphCacheStats, JobBudget, Spec,
    SweepReport,
};
use ccprotocols::ProtocolModel;
use ccta::{ModelStats, ParamValuation, ProtocolCategory, SystemModel};
use std::time::Duration;

/// Configuration of the verification sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifierConfig {
    /// Upper bound on every parameter value during valuation enumeration.
    pub max_param_value: u64,
    /// Upper bound on the number of modelled correct processes.
    pub max_processes: u64,
    /// Maximum number of valuations checked per protocol.
    pub max_valuations: usize,
    /// Total thread budget for each property sweep, split between grid
    /// cells and in-check workers (see `ccchecker::sweep`): `0` defers to
    /// the `CC_SWEEP_THREADS` environment variable and then to the
    /// available parallelism.
    pub threads: usize,
    /// Resource limits and in-check thread/shard/wave knobs of the
    /// explicit-state checker; `checker.workers == 0` lets the sweep derive
    /// the per-cell worker count from the thread budget, and
    /// `checker.wave_size == 0` defers to `CC_WAVE_SIZE` and then the
    /// engine default (see the `ccchecker` crate docs for the full knob
    /// precedence).
    pub checker: CheckerOptions,
    /// Resource budget for each protocol's combined sweep (see the "Job
    /// lifecycle & fault model" section of the `ccchecker` crate docs).
    /// The deadline is global to the sweep; state, transition and
    /// resident-byte caps apply per grid cell.  A tripped budget degrades
    /// gracefully: the affected cells report `interrupted` outcomes (the
    /// property status becomes `Unknown`, never a false verdict) and the
    /// sweep-level accounting still covers the whole grid.
    pub budget: JobBudget,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            max_param_value: 8,
            max_processes: 4,
            max_valuations: 2,
            threads: 0,
            checker: CheckerOptions::default(),
            budget: JobBudget::unlimited(),
        }
    }
}

impl VerifierConfig {
    /// A fast configuration: the single smallest non-trivial valuation per
    /// protocol.  Used by tests, examples and the documentation.
    pub fn quick() -> Self {
        VerifierConfig {
            max_param_value: 6,
            max_processes: 3,
            max_valuations: 1,
            ..VerifierConfig::default()
        }
    }

    /// A broader configuration for the benchmark harness.
    pub fn thorough() -> Self {
        VerifierConfig {
            max_param_value: 9,
            max_processes: 5,
            max_valuations: 3,
            ..VerifierConfig::default()
        }
    }

    /// This configuration with an explicit total thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// This configuration with an explicit parallel wave size for every
    /// check of the sweep (bounds a parallel level's candidate buffers;
    /// never changes verdicts or counts).
    pub fn with_wave_size(mut self, wave_size: usize) -> Self {
        self.checker.wave_size = wave_size;
        self
    }

    /// This configuration with the reachability-graph cache explicitly
    /// enabled or disabled for every sweep (overriding `CC_GRAPH_CACHE`;
    /// see the `ccchecker` crate docs).  The cache never changes a verdict;
    /// per-obligation state/transition counts under the cache are derived
    /// from the analysis pass.
    pub fn with_graph_cache(mut self, enabled: bool) -> Self {
        self.checker.graph_cache = Some(enabled);
        self
    }

    /// This configuration with the incremental sweep explicitly enabled or
    /// disabled (overriding `CC_SWEEP_INCREMENTAL`; see the "Incremental
    /// sweeps" section of the `ccchecker` crate docs).  When enabled (the
    /// default), each sweep worker carries the reachability graphs of its
    /// `(start restriction, valuation)` groups across guard-adjacent
    /// valuations — reusing them outright when the compiled guard bounds
    /// are identical and extending them incrementally when the step only
    /// relaxes guards — instead of re-exploring every valuation from
    /// scratch.  Incremental and from-scratch sweeps are bit-identical in
    /// verdicts, counts and counterexample schedules.
    pub fn with_incremental_sweep(mut self, enabled: bool) -> Self {
        self.checker.incremental_sweep = Some(enabled);
        self
    }

    /// This configuration with the per-graph verdict memo explicitly
    /// enabled or disabled (overriding `CC_VERDICT_MEMO`; see the "Verdict
    /// memoization & lineage compaction" section of the `ccchecker` crate
    /// docs).  When enabled (the default), an obligation already answered
    /// on an unchanged graph generation — e.g. across an
    /// identical-classified sweep step — is served from the memo without
    /// running any analysis pass.  Memoised and recomputed sweeps are
    /// bit-identical in verdicts, counts and counterexample schedules.
    pub fn with_verdict_memo(mut self, enabled: bool) -> Self {
        self.checker.verdict_memo = Some(enabled);
        self
    }

    /// This configuration with the tighten-only prune explicitly enabled
    /// or disabled (overriding `CC_TIGHTEN_PRUNE`; see the "Verdict
    /// memoization & lineage compaction" section of the `ccchecker` crate
    /// docs).  When enabled (the default), a sweep step that only tightens
    /// guard bounds prunes the cached graph in place — re-validating cached
    /// actions and re-linking — instead of re-exploring from scratch.
    /// Pruned and fresh graphs are bit-identical in verdicts, counts and
    /// counterexample schedules.
    pub fn with_tighten_prune(mut self, enabled: bool) -> Self {
        self.checker.tighten_prune = Some(enabled);
        self
    }

    /// This configuration with a wall-clock deadline (in milliseconds) on
    /// each protocol's combined sweep.  Cells past the deadline report
    /// `interrupted` outcomes and the affected properties come back
    /// `Unknown` rather than with a fabricated verdict.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.budget = self
            .budget
            .with_deadline(Duration::from_millis(deadline_ms));
        self
    }

    /// This configuration with a resident-byte cap on each grid cell's
    /// state store — the graceful-degradation stand-in for an OOM kill.
    pub fn with_max_resident_bytes(mut self, bytes: usize) -> Self {
        self.budget = self.budget.with_max_resident_bytes(bytes);
        self
    }

    /// Selects the sweep valuations for a model: the smallest admissible
    /// valuations with at least two correct processes and exactly one coin,
    /// preferring instances that actually contain Byzantine processes.
    pub fn select_valuations(&self, model: &SystemModel) -> Vec<ParamValuation> {
        let env = model.env();
        let mut candidates: Vec<ParamValuation> = env
            .admissible_valuations(self.max_param_value)
            .into_iter()
            .filter(|v| {
                env.system_size(v).is_some_and(|s| {
                    s.processes >= 2 && s.processes <= self.max_processes && s.coins <= 1
                })
            })
            .collect();
        let f_id = env.param_id("f");
        // prefer valuations with Byzantine processes (f >= 1), then smaller
        // systems
        candidates.sort_by_key(|v| {
            let byz = f_id.map(|f| v.value(f) >= 1).unwrap_or(false);
            let procs = env.system_size(v).map(|s| s.processes).unwrap_or(u64::MAX);
            (std::cmp::Reverse(byz as u8), procs, v.values().to_vec())
        });
        candidates.truncate(self.max_valuations);
        candidates
    }
}

/// The aggregated verdict for one consensus property of one protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyResult {
    /// Property name ("Agreement", "Validity", "A.S. Termination").
    pub property: String,
    /// Overall status across all obligations and valuations.
    pub status: CheckStatus,
    /// The schema-count cost metric summed over the property's obligations
    /// (the `nschemas` column of Table II).
    pub nschemas: u128,
    /// Total number of explored states.
    pub states: usize,
    /// Total wall-clock checking time.
    pub time: Duration,
    /// The first counterexample found, if any.
    pub counterexample: Option<Counterexample>,
    /// The per-obligation sweep reports.
    pub reports: Vec<SweepReport>,
}

impl PropertyResult {
    /// Whether the property holds on the whole sweep.
    pub fn holds(&self) -> bool {
        self.status == CheckStatus::Holds
    }

    /// Whether some obligation was violated.
    pub fn is_violated(&self) -> bool {
        self.status == CheckStatus::Violated
    }

    /// Name of the first violated obligation, if any.
    pub fn violated_obligation(&self) -> Option<&str> {
        self.reports
            .iter()
            .find(|r| r.status() == CheckStatus::Violated)
            .map(|r| r.spec_name.as_str())
    }
}

/// The full verification result of one protocol (one row of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolVerification {
    /// Protocol name.
    pub protocol: String,
    /// Protocol category.
    pub category: ProtocolCategory,
    /// Automaton size statistics (`|L|`, `|R|`).
    pub stats: ModelStats,
    /// The parameter valuations that were checked.
    pub valuations: Vec<ParamValuation>,
    /// Agreement verdict.
    pub agreement: PropertyResult,
    /// Validity verdict.
    pub validity: PropertyResult,
    /// Almost-sure termination verdict.
    pub termination: PropertyResult,
    /// Graph-cache accounting of the protocol's verification: all three
    /// properties run as *one* sweep, so the obligations of every
    /// `(start restriction, valuation)` group share a single exploration
    /// across property boundaries.
    pub cache: GraphCacheStats,
}

impl ProtocolVerification {
    /// Whether all three consensus properties hold.
    pub fn all_hold(&self) -> bool {
        self.agreement.holds() && self.validity.holds() && self.termination.holds()
    }

    /// The graph-cache accounting of the protocol's combined sweep.
    pub fn cache_stats(&self) -> &GraphCacheStats {
        &self.cache
    }
}

/// Assembles one property's verdict from its slice of the combined sweep's
/// reports.
fn assemble_property(
    property: &str,
    specs: &[Spec],
    reports: Vec<SweepReport>,
    single_round: &SystemModel,
) -> PropertyResult {
    let status = if reports.iter().any(|r| r.status() == CheckStatus::Violated) {
        CheckStatus::Violated
    } else if reports.iter().any(|r| r.status() == CheckStatus::Unknown) {
        CheckStatus::Unknown
    } else {
        CheckStatus::Holds
    };
    let counterexample = reports
        .iter()
        .filter_map(|r| r.first_violation())
        .filter_map(|o| o.outcome.counterexample.clone())
        .next();
    let nschemas = specs.iter().map(|s| schema_count(single_round, s)).sum();
    PropertyResult {
        property: property.to_string(),
        status,
        nschemas,
        states: reports.iter().map(|r| r.total_states()).sum(),
        time: reports.iter().map(|r| r.total_time()).sum(),
        counterexample,
        reports,
    }
}

/// Verifies one protocol: Agreement, Validity and Almost-sure Termination on
/// a sweep of admissible valuations.
///
/// All three properties run as *one* sweep over the concatenated obligation
/// catalogue: every `(query, valuation)` cell is checked exactly as the
/// per-property sweeps would (skipping and reports are per query), but the
/// reachability-graph cache shares each `(start restriction, valuation)`
/// exploration across property boundaries — the full
/// explore-once-evaluate-many win of the Table II workload.
pub fn verify_protocol(protocol: &ProtocolModel, config: &VerifierConfig) -> ProtocolVerification {
    let single_round = protocol.single_round();
    let obligations: Obligations = obligations_for(protocol, &single_round);
    let valuations = config.select_valuations(&single_round);
    let all_specs: Vec<Spec> = obligations
        .agreement
        .iter()
        .chain(obligations.validity.iter())
        .chain(obligations.termination.iter())
        .cloned()
        .collect();
    let (mut reports, cache) = if config.budget.is_unlimited() {
        check_over_sweep_with_stats(
            &single_round,
            &all_specs,
            &valuations,
            config.checker,
            sweep_thread_budget(config.threads),
        )
    } else {
        // a budgeted run goes through the job lifecycle layer: tripped
        // cells degrade to interrupted outcomes instead of aborting the
        // protocol, and the caller can see which cells were cut short via
        // `SweepReport::interrupted_cells`
        check_over_sweep_cancellable(
            &single_round,
            &all_specs,
            &valuations,
            config.checker,
            sweep_thread_budget(config.threads),
            &CancelToken::new(),
            config.budget,
        )
    };
    let mut take = |n: usize| -> Vec<SweepReport> { reports.drain(..n).collect() };
    let agreement_reports = take(obligations.agreement.len());
    let validity_reports = take(obligations.validity.len());
    let termination_reports = take(obligations.termination.len());
    ProtocolVerification {
        protocol: protocol.name().to_string(),
        category: protocol.category(),
        stats: protocol.stats(),
        valuations,
        agreement: assemble_property(
            "Agreement",
            &obligations.agreement,
            agreement_reports,
            &single_round,
        ),
        validity: assemble_property(
            "Validity",
            &obligations.validity,
            validity_reports,
            &single_round,
        ),
        termination: assemble_property(
            "A.S. Termination",
            &obligations.termination,
            termination_reports,
            &single_round,
        ),
        cache,
    }
}

/// Verifies every protocol of the benchmark (Table II).
pub fn verify_all(config: &VerifierConfig) -> Vec<ProtocolVerification> {
    ccprotocols::all_protocols()
        .iter()
        .map(|p| verify_protocol(p, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccprotocols::{bstyle, fixed, mmr14, protocol_by_name};

    #[test]
    fn valuation_selection_prefers_byzantine_instances() {
        let p = bstyle::cc85a();
        let config = VerifierConfig::default();
        let vals = config.select_valuations(&p.single_round());
        assert!(!vals.is_empty());
        assert!(vals.len() <= config.max_valuations);
        let env = p.model().env();
        let f = env.param_id("f").unwrap();
        // the first (preferred) valuation contains a Byzantine process
        assert!(vals[0].value(f) >= 1);
        for v in &vals {
            assert!(env.is_admissible(v));
        }
    }

    #[test]
    fn category_b_protocol_passes_all_properties() {
        let p = bstyle::cc85a();
        let result = verify_protocol(&p, &VerifierConfig::quick());
        assert!(result.agreement.holds(), "{:?}", result.agreement.status);
        assert!(result.validity.holds(), "{:?}", result.validity.status);
        assert!(
            result.termination.holds(),
            "violated: {:?}",
            result.termination.violated_obligation()
        );
        assert!(result.all_hold());
        assert!(result.agreement.nschemas > 0);
    }

    #[test]
    fn mmr14_termination_is_refuted_via_cb2() {
        let p = mmr14::mmr14();
        let result = verify_protocol(&p, &VerifierConfig::quick());
        assert!(result.agreement.holds());
        assert!(result.validity.holds());
        assert!(result.termination.is_violated());
        let violated = result.termination.violated_obligation().unwrap();
        assert!(
            violated.starts_with("CB"),
            "violated obligation: {violated}"
        );
        let ce = result.termination.counterexample.as_ref().unwrap();
        assert!(!ce.schedule.is_empty());
    }

    #[test]
    fn fixed_protocols_pass_the_binding_conditions() {
        for p in [fixed::miller18(), fixed::aby22()] {
            let result = verify_protocol(&p, &VerifierConfig::quick());
            assert!(
                result.termination.holds(),
                "{}: violated {:?}",
                p.name(),
                result.termination.violated_obligation()
            );
            assert!(result.all_hold(), "{}", p.name());
        }
    }

    #[test]
    fn wave_size_never_changes_results() {
        let p = protocol_by_name("Rabin83").unwrap();
        let baseline = verify_protocol(&p, &VerifierConfig::quick());
        for wave_size in [1, 7, usize::MAX] {
            let waved = verify_protocol(&p, &VerifierConfig::quick().with_wave_size(wave_size));
            for (b, w) in [
                &baseline.agreement,
                &baseline.validity,
                &baseline.termination,
            ]
            .into_iter()
            .zip([&waved.agreement, &waved.validity, &waved.termination])
            {
                assert_eq!(w.status, b.status, "wave {wave_size}: {}", b.property);
                assert_eq!(w.states, b.states, "wave {wave_size}: {}", b.property);
                assert_eq!(w.nschemas, b.nschemas);
                assert_eq!(
                    w.counterexample.is_some(),
                    b.counterexample.is_some(),
                    "wave {wave_size}: {}",
                    b.property
                );
            }
        }
    }

    #[test]
    fn graph_cache_never_changes_verdicts() {
        // MMR14 exercises both a violated obligation (CB2) and held ones;
        // the cache must agree on every verdict and amortize explorations
        let p = mmr14::mmr14();
        let cached = verify_protocol(&p, &VerifierConfig::quick().with_graph_cache(true));
        let uncached = verify_protocol(&p, &VerifierConfig::quick().with_graph_cache(false));
        for (c, u) in [&cached.agreement, &cached.validity, &cached.termination]
            .into_iter()
            .zip([
                &uncached.agreement,
                &uncached.validity,
                &uncached.termination,
            ])
        {
            assert_eq!(c.status, u.status, "{}", c.property);
            assert_eq!(c.nschemas, u.nschemas);
            assert_eq!(
                c.counterexample.is_some(),
                u.counterexample.is_some(),
                "{}",
                c.property
            );
        }
        assert_eq!(
            cached.termination.violated_obligation(),
            uncached.termination.violated_obligation()
        );
        let stats = cached.cache_stats();
        assert!(stats.graphs_built() > 0);
        assert!(stats.specs_served() > stats.graphs_built());
        assert_eq!(uncached.cache_stats().graphs_built(), 0);
    }

    #[test]
    fn incremental_sweep_never_changes_results() {
        // the default config checks two guard-adjacent valuations per
        // protocol, so the incremental sweep serves the second valuation's
        // groups straight from the lineage — with identical verdicts,
        // counts and violated obligations
        let p = mmr14::mmr14();
        let config = VerifierConfig::default();
        let incremental = verify_protocol(
            &p,
            &config.with_graph_cache(true).with_incremental_sweep(true),
        );
        let fresh = verify_protocol(
            &p,
            &config.with_graph_cache(true).with_incremental_sweep(false),
        );
        for (i, f) in [
            &incremental.agreement,
            &incremental.validity,
            &incremental.termination,
        ]
        .into_iter()
        .zip([&fresh.agreement, &fresh.validity, &fresh.termination])
        {
            assert_eq!(i.status, f.status, "{}", i.property);
            assert_eq!(i.states, f.states, "{}", i.property);
            assert_eq!(i.nschemas, f.nschemas, "{}", i.property);
            assert_eq!(
                i.counterexample.is_some(),
                f.counterexample.is_some(),
                "{}",
                i.property
            );
        }
        assert_eq!(
            incremental.termination.violated_obligation(),
            fresh.termination.violated_obligation()
        );
        // the lineage actually served later valuations without exploring
        assert!(
            incremental.cache.reused_groups() + incremental.cache.extended_groups() > 0,
            "{}",
            incremental.cache
        );
        assert_eq!(fresh.cache.reused_groups(), 0);
        assert_eq!(fresh.cache.extended_groups(), 0);
    }

    #[test]
    fn exhausted_deadline_degrades_to_unknown_without_losing_cells() {
        // a zero deadline trips every grid cell: the properties must come
        // back Unknown (never a fabricated verdict or counterexample) and
        // the interrupted cells must still account for the whole grid
        let p = bstyle::cc85a();
        let result = verify_protocol(&p, &VerifierConfig::quick().with_deadline_ms(0));
        assert!(!result.all_hold());
        let width = result.valuations.len();
        for prop in [&result.agreement, &result.validity, &result.termination] {
            assert_eq!(prop.status, CheckStatus::Unknown, "{}", prop.property);
            assert!(prop.counterexample.is_none(), "{}", prop.property);
            for report in &prop.reports {
                assert_eq!(
                    report.interrupted_cells(),
                    width,
                    "{}: {}",
                    prop.property,
                    report.spec_name
                );
            }
        }
        // the same protocol under an unlimited budget routes through the
        // plain sweep and still passes
        assert!(verify_protocol(&p, &VerifierConfig::quick()).all_hold());
    }

    #[test]
    fn lookup_and_verify_by_name() {
        let p = protocol_by_name("KS16").unwrap();
        let result = verify_protocol(&p, &VerifierConfig::quick());
        assert_eq!(result.protocol, "KS16");
        assert_eq!(result.category, ProtocolCategory::B);
        assert!(result.all_hold());
    }
}
