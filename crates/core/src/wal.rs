//! Crash-safe append-only record logs.
//!
//! The daemon's durable state (the cross-request verdict cache and parked
//! job checkpoints, see `ccserve::store`) survives process death through an
//! append-only log built from the primitives here.  The design target is
//! *kill -9 at any byte*: a reader must never trust bytes past the first
//! corruption, never error out on a torn tail, and never serve a record
//! whose checksum does not match.
//!
//! # On-disk layout
//!
//! ```text
//! [file header: magic u32 | version u32 | generation u64]
//! [record]*
//! record := [len u32][checksum u64][tag u8][payload: len-1 bytes]
//! ```
//!
//! All integers little-endian.  `len` counts the tag byte plus the payload,
//! so a record occupies `12 + len` bytes on disk.  The checksum is the
//! FNV-64 fold of [`crate::fingerprint::fnv64_bytes`] over `[tag][payload]`
//! — the same process-stable hash the fingerprints use, so the log needs no
//! new hashing dependency.
//!
//! # Recovery contract
//!
//! [`replay`] scans records in order and stops — *without erroring* — at
//! the first torn or checksum-failing record, reporting how many clean
//! bytes precede it.  The caller truncates the file to that offset before
//! appending again, so one crash can never corrupt later writes.  A file
//! whose header is missing or torn replays as empty.
//!
//! # Generation swap
//!
//! Compaction writes a fresh log (next generation) to a sibling temp file,
//! fsyncs it, and [`commit_replace`]s it over the live path with an atomic
//! rename, so a crash mid-compaction leaves either the old or the new
//! generation — never a mix.

use crate::fingerprint::{fnv64_bytes, FNV_BASIS};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Log file magic: `"ccWL"` little-endian.
pub const LOG_MAGIC: u32 = 0x4c57_6363;

/// Current log format version.
pub const LOG_VERSION: u32 = 1;

/// Bytes of the file header (`magic | version | generation`).
pub const HEADER_BYTES: u64 = 16;

/// Bytes of a record header (`len | checksum`), before the tag byte.
pub const RECORD_HEADER_BYTES: u64 = 12;

/// Upper bound on a single record body (tag + payload); a declared length
/// beyond this is treated as corruption, bounding replay allocations.
pub const MAX_RECORD_BYTES: u32 = 1 << 24;

/// One decoded record: the tag byte and the payload that followed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record type tag (meaning assigned by the caller).
    pub tag: u8,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// The result of replaying a log file.
#[derive(Debug, Default)]
pub struct Replay {
    /// Every record that passed its checksum, in append order.
    pub records: Vec<Record>,
    /// The log generation from the file header (0 for an empty/torn file).
    pub generation: u64,
    /// File offset just past the last clean record: the truncation point.
    pub clean_bytes: u64,
    /// Bytes past `clean_bytes` that were discarded as torn or corrupt.
    pub truncated_bytes: u64,
}

impl Replay {
    /// Whether the tail of the file had to be discarded.
    pub fn was_truncated(&self) -> bool {
        self.truncated_bytes > 0
    }
}

/// Encodes one record (header + tag + payload) into a byte buffer ready to
/// be appended.
pub fn encode_record(tag: u8, payload: &[u8]) -> Vec<u8> {
    let len = 1 + payload.len();
    assert!(
        len <= MAX_RECORD_BYTES as usize,
        "record exceeds {MAX_RECORD_BYTES} bytes"
    );
    let mut body = Vec::with_capacity(len);
    body.push(tag);
    body.extend_from_slice(payload);
    let checksum = fnv64_bytes(FNV_BASIS, &body);
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES as usize + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Encodes the file header for a given generation.
pub fn encode_header(generation: u64) -> [u8; HEADER_BYTES as usize] {
    let mut h = [0u8; HEADER_BYTES as usize];
    h[..4].copy_from_slice(&LOG_MAGIC.to_le_bytes());
    h[4..8].copy_from_slice(&LOG_VERSION.to_le_bytes());
    h[8..].copy_from_slice(&generation.to_le_bytes());
    h
}

/// Replays the log bytes, stopping silently at the first torn or
/// checksum-failing record (see the module docs for the contract).
pub fn replay_bytes(bytes: &[u8]) -> Replay {
    let mut out = Replay::default();
    if bytes.len() < HEADER_BYTES as usize {
        out.truncated_bytes = bytes.len() as u64;
        return out;
    }
    let magic = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if magic != LOG_MAGIC || version != LOG_VERSION {
        out.truncated_bytes = bytes.len() as u64;
        return out;
    }
    out.generation = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut pos = HEADER_BYTES as usize;
    out.clean_bytes = pos as u64;
    // a `break` below leaves the torn/corrupt tail uncounted in clean_bytes
    while let Some(header) = bytes.get(pos..pos + RECORD_HEADER_BYTES as usize) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_BYTES {
            break; // corrupt length field
        }
        let checksum = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let body_start = pos + RECORD_HEADER_BYTES as usize;
        let Some(body) = bytes.get(body_start..body_start + len as usize) else {
            break; // torn record body
        };
        if fnv64_bytes(FNV_BASIS, body) != checksum {
            break; // bit rot or a torn overwrite
        }
        out.records.push(Record {
            tag: body[0],
            payload: body[1..].to_vec(),
        });
        pos = body_start + len as usize;
        out.clean_bytes = pos as u64;
    }
    out.truncated_bytes = bytes.len() as u64 - out.clean_bytes;
    out
}

/// Opens (or creates) a log file for appending: replays it, truncates any
/// torn tail in place, and returns the file positioned at the clean end
/// together with the replay.  A missing or header-torn file is rewritten as
/// an empty generation-`fresh_generation` log.
pub fn open_log(path: &Path, fresh_generation: u64) -> io::Result<(File, Replay)> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let mut replay = replay_bytes(&bytes);
    if bytes.len() < HEADER_BYTES as usize || replay.clean_bytes < HEADER_BYTES {
        // no usable header: start a fresh generation
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&encode_header(fresh_generation))?;
        file.sync_data()?;
        replay = Replay {
            generation: fresh_generation,
            clean_bytes: HEADER_BYTES,
            truncated_bytes: replay.truncated_bytes,
            ..Replay::default()
        };
        return Ok((file, replay));
    }
    if replay.was_truncated() {
        // never trust — or append after — bytes past the corruption
        file.set_len(replay.clean_bytes)?;
    }
    file.seek(SeekFrom::Start(replay.clean_bytes))?;
    Ok((file, replay))
}

/// Atomically replaces `live` with the fully written, fsync'd `staged`
/// file: rename, then fsync the parent directory so the swap itself is
/// durable.  A crash before the rename leaves the old generation; after,
/// the new one.
pub fn commit_replace(staged: &Path, live: &Path) -> io::Result<()> {
    std::fs::rename(staged, live)?;
    if let Some(dir) = live.parent() {
        // directory fsync is what makes the rename survive power loss; on
        // platforms where opening a directory fails, the rename alone is
        // the best available
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_log(generation: u64, records: &[(u8, &[u8])]) -> Vec<u8> {
        let mut bytes = encode_header(generation).to_vec();
        for (tag, payload) in records {
            bytes.extend_from_slice(&encode_record(*tag, payload));
        }
        bytes
    }

    #[test]
    fn round_trips_records_in_order() {
        let bytes = build_log(3, &[(1, b"alpha"), (2, b""), (1, b"beta")]);
        let replay = replay_bytes(&bytes);
        assert_eq!(replay.generation, 3);
        assert!(!replay.was_truncated());
        assert_eq!(replay.clean_bytes, bytes.len() as u64);
        assert_eq!(
            replay.records,
            vec![
                Record {
                    tag: 1,
                    payload: b"alpha".to_vec()
                },
                Record {
                    tag: 2,
                    payload: Vec::new()
                },
                Record {
                    tag: 1,
                    payload: b"beta".to_vec()
                },
            ]
        );
    }

    #[test]
    fn every_torn_tail_offset_recovers_the_clean_prefix() {
        let prefix = build_log(1, &[(1, b"first"), (1, b"second")]);
        let full = {
            let mut b = prefix.clone();
            b.extend_from_slice(&encode_record(1, b"final record payload"));
            b
        };
        // truncate at every byte offset of the final record: the replay
        // must recover exactly the first two records, never error, never
        // fabricate a third
        for cut in prefix.len()..full.len() {
            let replay = replay_bytes(&full[..cut]);
            assert_eq!(replay.records.len(), 2, "cut at {cut}");
            assert_eq!(replay.clean_bytes, prefix.len() as u64, "cut at {cut}");
            assert_eq!(
                replay.truncated_bytes,
                (cut - prefix.len()) as u64,
                "cut at {cut}"
            );
        }
        // and the full file replays all three
        assert_eq!(replay_bytes(&full).records.len(), 3);
    }

    #[test]
    fn corrupt_bytes_stop_the_replay_without_erroring() {
        let clean = build_log(1, &[(1, b"aaaa"), (1, b"bbbb"), (1, b"cccc")]);
        // flip one byte inside the second record's payload
        let second_start = encode_header(1).len() + encode_record(1, b"aaaa").len();
        let mut corrupt = clean.clone();
        corrupt[second_start + RECORD_HEADER_BYTES as usize + 2] ^= 0x40;
        let replay = replay_bytes(&corrupt);
        assert_eq!(
            replay.records.len(),
            1,
            "only the prefix before the corruption"
        );
        assert!(replay.was_truncated());
        // a corrupt length field is also a stop, not a crash or huge alloc
        let mut bad_len = clean.clone();
        bad_len[second_start..second_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(replay_bytes(&bad_len).records.len(), 1);
    }

    #[test]
    fn headerless_or_foreign_files_replay_empty() {
        assert_eq!(replay_bytes(b"").records.len(), 0);
        assert_eq!(replay_bytes(b"short").records.len(), 0);
        let mut foreign = build_log(1, &[(1, b"x")]);
        foreign[0] ^= 0xFF;
        let replay = replay_bytes(&foreign);
        assert_eq!(replay.records.len(), 0);
        assert_eq!(replay.clean_bytes, 0);
    }

    #[test]
    fn open_log_truncates_torn_tails_and_appends_cleanly() {
        let dir = std::env::temp_dir().join(format!("ccwal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.bin");
        let _ = std::fs::remove_file(&path);

        // fresh file: header written, no records
        let (mut file, replay) = open_log(&path, 7).unwrap();
        assert_eq!(replay.generation, 7);
        assert_eq!(replay.records.len(), 0);
        file.write_all(&encode_record(1, b"kept")).unwrap();
        file.write_all(&encode_record(1, b"also kept")).unwrap();
        // simulate a torn append
        file.write_all(&encode_record(1, b"torn")[..5]).unwrap();
        file.sync_data().unwrap();
        drop(file);

        let (mut file, replay) = open_log(&path, 7).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.was_truncated());
        // appending after recovery lands right after the clean prefix
        file.write_all(&encode_record(2, b"after recovery"))
            .unwrap();
        file.sync_data().unwrap();
        drop(file);
        let (_, replay) = open_log(&path, 7).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[2].tag, 2);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn commit_replace_swaps_generations() {
        let dir = std::env::temp_dir().join(format!("ccwal-swap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let live = dir.join("live.bin");
        let staged = dir.join("staged.bin");
        std::fs::write(&live, build_log(1, &[(1, b"old")])).unwrap();
        std::fs::write(&staged, build_log(2, &[(1, b"new")])).unwrap();
        commit_replace(&staged, &live).unwrap();
        let replay = replay_bytes(&std::fs::read(&live).unwrap());
        assert_eq!(replay.generation, 2);
        assert_eq!(replay.records[0].payload, b"new");
        assert!(!staged.exists());
        std::fs::remove_file(&live).ok();
    }
}
