//! Verification of randomized consensus protocols with common coins.
//!
//! This is the facade crate of the reproduction of *"Verifying Randomized
//! Consensus Protocols with Common Coins"* (DSN 2024).  It ties together
//!
//! * the threshold-automata formalism ([`ccta`]),
//! * the counter-system semantics ([`cccounter`]),
//! * the single-round query checker ([`ccchecker`]), and
//! * the benchmark protocol models ([`ccprotocols`]),
//!
//! and exposes the end-to-end pipeline of Sect. V of the paper:
//!
//! 1. [`obligations::obligations_for`] derives, from a protocol's category,
//!    the single-round queries whose validity implies Agreement, Validity and
//!    Almost-sure Termination (`Inv1`, `Inv2`, `C1`, `C2`, `C2'`,
//!    `CB0`–`CB4`, plus the non-blocking side condition of Theorem 2).
//! 2. [`verifier::verify_protocol`] checks every query on the single-round
//!    automaton `TA_rd` over a sweep of small admissible parameter
//!    valuations and aggregates the verdicts per consensus property.
//! 3. [`report`] renders the results in the shape of Tables II, III and IV.
//!
//! # Quickstart
//!
//! ```
//! use cccore::prelude::*;
//!
//! let mmr14 = ccprotocols::protocol_by_name("MMR14").expect("benchmark protocol");
//! let config = VerifierConfig::quick();
//! let result = verify_protocol(&mmr14, &config);
//! // the adaptive-adversary attack of Sect. II shows up as a violation of
//! // the binding condition CB2
//! assert!(result.termination.is_violated());
//! assert!(result.agreement.holds());
//! ```

pub mod fingerprint;
pub mod obligations;
pub mod report;
pub mod verifier;
pub mod wal;

pub use fingerprint::{
    spec_fingerprint, system_fingerprint, valuation_fingerprint, verdict_code, verdict_from_code,
};
pub use obligations::{obligations_for, Obligations};
pub use report::{render_table2, render_table3, render_table4, Table4Row};
pub use verifier::{
    verify_all, verify_protocol, PropertyResult, ProtocolVerification, VerifierConfig,
};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::obligations::{obligations_for, Obligations};
    pub use crate::report::{render_table2, render_table3, render_table4};
    pub use crate::verifier::{
        verify_all, verify_protocol, PropertyResult, ProtocolVerification, VerifierConfig,
    };
    pub use ccchecker::{CheckStatus, CheckerOptions, GraphCacheStats};
    pub use ccprotocols::{all_protocols, protocol_by_name, ProtocolModel};
    pub use ccta::ProtocolCategory;
}
