//! Stable FNV-64 fingerprints for cross-request result caching.
//!
//! The `ccserve` daemon caches verdicts across requests keyed by the triple
//! *(system fingerprint, valuation fingerprint, obligation fingerprint)*.
//! Two clients that submit the same protocol (by name or by generated-family
//! parameters) with the same valuation and obligation must hit the same
//! cache line, so the fingerprints hash the *resolved model structure*, not
//! the request bytes: a family spec and a by-name protocol that instantiate
//! to identical automata fingerprint identically.
//!
//! The hash is the same FNV-1a-style fold used by
//! `ccprotocols::FamilyParams::fingerprint`, so fingerprints are stable
//! across processes and platforms (no [`std::collections::hash_map::RandomState`]
//! seeding), and cheap enough to compute per request.
//!
//! The module also fixes the wire encoding of verdicts
//! ([`verdict_code`] / [`verdict_from_code`]): the daemon sends the same
//! `+` / `-` / `?` glyphs the report tables print, so a degraded
//! (deadline-tripped) cell shows up as `?` end to end.

use ccchecker::{CheckStatus, Spec};
use ccta::{ParamValuation, SystemModel};

/// The FNV-64 offset basis.
pub const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one word into an FNV-64 state.
#[inline]
pub fn fnv64(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(FNV_PRIME)
}

/// Folds a byte string into an FNV-64 state, length-prefixed so that
/// adjacent fields cannot alias (`"ab" + "c"` vs `"a" + "bc"`).
#[inline]
pub fn fnv64_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    h = fnv64(h, bytes.len() as u64);
    for &b in bytes {
        h = fnv64(h, b as u64);
    }
    h
}

/// Folds a string into an FNV-64 state (length-prefixed UTF-8 bytes).
#[inline]
pub fn fnv64_str(h: u64, s: &str) -> u64 {
    fnv64_bytes(h, s.as_bytes())
}

/// Fingerprints a resolved system model: name, round kind, environment
/// parameters, variable alphabet, locations (with class/value/owner) and
/// the fully rendered rules.  Two structurally identical models fingerprint
/// identically regardless of how they were requested.
pub fn system_fingerprint(model: &SystemModel) -> u64 {
    let mut h = FNV_BASIS;
    h = fnv64_str(h, model.name());
    h = fnv64(h, model.kind() as u64);
    for name in model.env().param_names() {
        h = fnv64_str(h, name);
    }
    h = fnv64_str(h, &model.env().describe_resilience());
    for var in model.vars() {
        h = fnv64_str(h, var.name());
        h = fnv64(h, var.kind() as u64);
    }
    for loc in model.locations() {
        h = fnv64_str(h, loc.name());
        h = fnv64(h, loc.class() as u64);
        h = fnv64(h, loc.value().map_or(2, |v| v.index() as u64));
        h = fnv64(h, loc.is_decision() as u64);
        h = fnv64(h, loc.owner() as u64);
    }
    // The single-round construction emits its border-copy self-loops in
    // HashMap iteration order, so rule order is not stable across rebuilds
    // of the same model.  Fold the rules commutatively (sum of per-rule
    // hashes) so structurally identical models fingerprint identically no
    // matter how their rule lists happen to be ordered.
    let mut rules_acc = 0u64;
    for rule in model.rule_ids() {
        rules_acc = rules_acc.wrapping_add(fnv64_str(FNV_BASIS, &model.describe_rule(rule)));
    }
    h = fnv64(h, model.rules().len() as u64);
    h = fnv64(h, rules_acc);
    h
}

/// Fingerprints a parameter valuation (the values in environment parameter
/// order).
pub fn valuation_fingerprint(valuation: &ParamValuation) -> u64 {
    let mut h = FNV_BASIS;
    h = fnv64(h, valuation.len() as u64);
    for &v in valuation.values() {
        h = fnv64(h, v);
    }
    h
}

/// Fingerprints an obligation: name, shape, start restriction and the
/// location sets it constrains (by location id, which the system
/// fingerprint pins to the model structure).
pub fn spec_fingerprint(spec: &Spec) -> u64 {
    let mut h = FNV_BASIS;
    h = fnv64_str(h, spec.name());
    h = fnv64_str(h, &spec.start().label());
    match spec {
        Spec::CoverNever {
            trigger, forbidden, ..
        } => {
            h = fnv64(h, 1);
            h = fold_locs(h, trigger.locs());
            h = fold_locs(h, forbidden.locs());
        }
        Spec::NeverFrom { forbidden, .. } => {
            h = fnv64(h, 2);
            h = fold_locs(h, forbidden.locs());
        }
        Spec::ExistsAvoidOneOf { forbidden_sets, .. } => {
            h = fnv64(h, 3);
            h = fnv64(h, forbidden_sets.len() as u64);
            for set in forbidden_sets {
                h = fold_locs(h, set.locs());
            }
        }
        Spec::NonBlocking { .. } => {
            h = fnv64(h, 4);
        }
    }
    h
}

fn fold_locs(mut h: u64, locs: &[ccta::LocId]) -> u64 {
    h = fnv64(h, locs.len() as u64);
    for l in locs {
        h = fnv64(h, l.0 as u64);
    }
    h
}

/// The wire/report glyph of a verdict: `+` holds, `-` violated, `?` unknown
/// (including deadline-degraded cells).
pub fn verdict_code(status: CheckStatus) -> u8 {
    match status {
        CheckStatus::Holds => b'+',
        CheckStatus::Violated => b'-',
        CheckStatus::Unknown => b'?',
    }
}

/// Decodes a wire verdict glyph; `None` for bytes outside the taxonomy.
pub fn verdict_from_code(code: u8) -> Option<CheckStatus> {
    match code {
        b'+' => Some(CheckStatus::Holds),
        b'-' => Some(CheckStatus::Violated),
        b'?' => Some(CheckStatus::Unknown),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccchecker::LocSet;
    use ccprotocols::family::FamilyParams;

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let ben = ccprotocols::protocol_by_name("Rabin83").unwrap();
        let mmr = ccprotocols::protocol_by_name("MMR14").unwrap();
        let ben_rd = ben.single_round();
        let mmr_rd = mmr.single_round();
        assert_eq!(system_fingerprint(&ben_rd), system_fingerprint(&ben_rd));
        assert_ne!(system_fingerprint(&ben_rd), system_fingerprint(&mmr_rd));
        assert_ne!(
            system_fingerprint(ben.model()),
            system_fingerprint(&ben_rd),
            "multi-round and single-round forms must not alias"
        );
    }

    #[test]
    fn family_route_and_rebuild_agree() {
        let fam = FamilyParams::default().instantiate(7);
        let again = FamilyParams::default().instantiate(7);
        assert_eq!(
            system_fingerprint(&fam.single_round),
            system_fingerprint(&again.single_round)
        );
        let other = FamilyParams::default().instantiate(8);
        assert_ne!(
            system_fingerprint(&fam.single_round),
            system_fingerprint(&other.single_round)
        );
    }

    #[test]
    fn valuation_fingerprint_separates_values_and_lengths() {
        let a = ParamValuation::new(vec![4, 1, 1]);
        let b = ParamValuation::new(vec![4, 1, 2]);
        let c = ParamValuation::new(vec![4, 1]);
        assert_eq!(valuation_fingerprint(&a), valuation_fingerprint(&a));
        assert_ne!(valuation_fingerprint(&a), valuation_fingerprint(&b));
        assert_ne!(valuation_fingerprint(&c), valuation_fingerprint(&a));
    }

    #[test]
    fn spec_fingerprint_separates_shape_name_and_sets() {
        let ben = ccprotocols::protocol_by_name("Rabin83").unwrap();
        let rd = ben.single_round();
        let obligations = crate::obligations_for(&ben, &rd);
        let specs = obligations.all();
        let mut seen = std::collections::HashSet::new();
        for spec in &specs {
            assert!(
                seen.insert(spec_fingerprint(spec)),
                "collision in {} catalogue at {}",
                rd.name(),
                spec.name()
            );
        }
        // same name, different forbidden set -> different fingerprint
        let d0 = LocSet::from_names(&rd, "D0", &[rd.locations()[0].name()]);
        let d1 = LocSet::from_names(&rd, "D1", &[rd.locations()[1].name()]);
        let s0 = Spec::NeverFrom {
            name: "X".into(),
            start: specs[0].start(),
            forbidden: d0,
        };
        let s1 = Spec::NeverFrom {
            name: "X".into(),
            start: specs[0].start(),
            forbidden: d1,
        };
        assert_ne!(spec_fingerprint(&s0), spec_fingerprint(&s1));
    }

    #[test]
    fn verdict_codes_round_trip() {
        for status in [
            CheckStatus::Holds,
            CheckStatus::Violated,
            CheckStatus::Unknown,
        ] {
            assert_eq!(verdict_from_code(verdict_code(status)), Some(status));
        }
        assert_eq!(verdict_from_code(b'x'), None);
        assert_eq!(verdict_code(CheckStatus::Unknown), b'?');
    }
}
