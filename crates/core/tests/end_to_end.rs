//! Integration tests spanning the whole stack: protocol models (ccprotocols)
//! → single-round construction (ccta) → counter systems (cccounter) →
//! obligations and checking (ccchecker, cccore).

use cccore::prelude::*;
use cccounter::{CounterSystem, EagerAdversary, RandomAdversary, RoundRigid, RunOutcome};
use ccta::{BinValue, ModelKind, Owner, ParamValuation};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn the_benchmark_reproduces_table_ii_verdicts() {
    // Every protocol satisfies Agreement and Validity; every protocol except
    // MMR14 also satisfies the almost-sure-termination obligations, while
    // MMR14 is refuted by a binding counterexample (Table II, last column).
    let config = VerifierConfig::quick();
    for result in verify_all(&config) {
        assert!(result.agreement.holds(), "{} agreement", result.protocol);
        assert!(result.validity.holds(), "{} validity", result.protocol);
        if result.protocol == "MMR14" {
            assert!(result.termination.is_violated());
            let obligation = result.termination.violated_obligation().unwrap();
            assert!(obligation.starts_with("CB"), "{obligation}");
        } else {
            assert!(
                result.termination.holds(),
                "{} termination ({:?})",
                result.protocol,
                result.termination.violated_obligation()
            );
        }
    }
}

#[test]
fn mmr14_counterexample_replays_on_the_counter_system() {
    // The CB2 counterexample reported by the checker is a real execution of
    // the single-round counter system: replaying it visits a configuration
    // with the refined N0 location occupied and one with M1 occupied.
    let mmr14 = protocol_by_name("MMR14").unwrap();
    let result = verify_protocol(&mmr14, &VerifierConfig::quick());
    let ce = result
        .termination
        .counterexample
        .expect("MMR14 must produce a counterexample");
    let single_round = mmr14.single_round();
    let sys = CounterSystem::new(single_round.clone(), ce.params.clone()).unwrap();
    let path = ce
        .schedule
        .apply(&sys, &ce.initial)
        .expect("counterexample schedule must be applicable");
    let n0 = single_round.location_id("N0").unwrap();
    let m1 = single_round.location_id("M1").unwrap();
    assert!(path.visits(|c| c.counter(n0, 0) > 0));
    assert!(path.visits(|c| c.counter(m1, 0) > 0));
}

#[test]
fn single_round_models_keep_the_variable_alphabet() {
    for protocol in all_protocols() {
        let multi = protocol.model();
        let single = protocol.single_round();
        assert_eq!(single.kind(), ModelKind::SingleRound);
        assert_eq!(multi.vars(), single.vars());
        // border copies are added, nothing else disappears
        assert_eq!(
            single.locations().len(),
            multi.locations().len()
                + multi.border_locations(Owner::Process, None).len()
                + multi.border_locations(Owner::Coin, None).len()
        );
    }
}

#[test]
fn graph_cache_agrees_with_the_per_spec_path_on_every_protocol() {
    // The reachability-graph cache must agree with the per-spec search on
    // every verdict of every obligation of all eight Table II protocols —
    // per obligation and per valuation, not just in aggregate — and its
    // counterexamples must replay.
    let config = VerifierConfig::quick();
    for protocol in all_protocols() {
        let cached = verify_protocol(&protocol, &config.with_graph_cache(true));
        let uncached = verify_protocol(&protocol, &config.with_graph_cache(false));
        assert!(
            cached.cache_stats().graphs_built() > 0,
            "{}",
            cached.protocol
        );
        assert_eq!(uncached.cache_stats().graphs_built(), 0);
        for (c, u) in [&cached.agreement, &cached.validity, &cached.termination]
            .into_iter()
            .zip([
                &uncached.agreement,
                &uncached.validity,
                &uncached.termination,
            ])
        {
            assert_eq!(c.status, u.status, "{}/{}", cached.protocol, c.property);
            for (cr, ur) in c.reports.iter().zip(&u.reports) {
                assert_eq!(cr.spec_name, ur.spec_name);
                assert_eq!(
                    cr.status(),
                    ur.status(),
                    "{}/{}",
                    cached.protocol,
                    cr.spec_name
                );
                for (co, uo) in cr.outcomes.iter().zip(&ur.outcomes) {
                    assert_eq!(co.outcome.status, uo.outcome.status);
                    assert_eq!(co.skipped, uo.skipped);
                    if let Some(ce) = &co.outcome.counterexample {
                        let sys =
                            CounterSystem::new(protocol.single_round(), ce.params.clone()).unwrap();
                        assert!(
                            ce.schedule.is_empty() || ce.schedule.apply(&sys, &ce.initial).is_ok(),
                            "{}/{}: cached counterexample must replay",
                            cached.protocol,
                            cr.spec_name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn round_rigid_adversary_runs_terminate_on_every_single_round_benchmark() {
    // Theorem 2's side condition, exercised dynamically: fair round-rigid
    // adversaries drive every single-round benchmark system into a terminal
    // configuration.
    let mut rng = StdRng::seed_from_u64(9);
    for protocol in all_protocols() {
        let single = protocol.single_round();
        let Some(valuation) = VerifierConfig::quick()
            .select_valuations(&single)
            .into_iter()
            .next()
        else {
            continue;
        };
        let sys = CounterSystem::new(single, valuation).unwrap();
        let init = sys.round_start_configurations()[0].clone();
        let mut adv = RoundRigid::new(EagerAdversary);
        let (path, outcome) =
            cccounter::adversary::run_adversary(&sys, init, &mut adv, &mut rng, 2_000);
        assert_eq!(outcome, RunOutcome::Terminal, "{}", protocol.name());
        assert!(path.schedule().is_round_rigid());
    }
}

#[test]
fn validity_holds_dynamically_for_unanimous_starts() {
    // Sampled executions of the KS16 single-round system from unanimous-0
    // starts never occupy a final location with value 1.
    let protocol = protocol_by_name("KS16").unwrap();
    let single = protocol.single_round();
    let e1_locs = single.final_locations(Owner::Process, Some(BinValue::One));
    let sys = CounterSystem::new(single, ParamValuation::new(vec![4, 1, 1, 1])).unwrap();
    let init = sys.unanimous_start_configurations(BinValue::Zero)[0].clone();
    let mut rng = StdRng::seed_from_u64(3);
    for seed in 0..20u64 {
        let mut adv = RandomAdversary::new(StdRng::seed_from_u64(seed));
        let (path, outcome) =
            cccounter::adversary::run_adversary(&sys, init.clone(), &mut adv, &mut rng, 2_000);
        assert_eq!(outcome, RunOutcome::Terminal);
        assert!(path.always(|c| e1_locs.iter().all(|&l| c.counter(l, 0) == 0)));
    }
}

/// Theorem 1, sampled: any applicable schedule sampled by a random adversary
/// on the multi-round MMR14 system can be reordered into a round-rigid
/// schedule that is applicable and reaches the same configuration.
#[test]
fn theorem_1_reordering_on_sampled_schedules() {
    let mmr14 = protocol_by_name("MMR14").unwrap();
    let sys =
        CounterSystem::new(mmr14.model().clone(), ParamValuation::new(vec![4, 1, 1, 1])).unwrap();
    let init = sys.round_start_configurations()[0].clone();
    for seed in (0u64..500).step_by(31) {
        let mut adv = RandomAdversary::new(StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let (path, _) =
            cccounter::adversary::run_adversary(&sys, init.clone(), &mut adv, &mut rng, 120);
        let schedule = path.schedule();
        let rigid = cccounter::schedule::reorder_round_rigid(&sys, &init, &schedule).unwrap();
        assert!(rigid.is_round_rigid(), "seed {seed}");
        let rigid_final = rigid.apply(&sys, &init).unwrap().last().clone();
        assert_eq!(&rigid_final, path.last(), "seed {seed}");
    }
}

/// The schema-count metric is monotone in the query shape: the two-cut
/// CoverNever queries always cost at least as much as single-cut queries on
/// the same automaton.
#[test]
fn schema_counts_are_monotone_in_cut_points() {
    for protocol in all_protocols() {
        let single = protocol.single_round();
        let obligations = obligations_for(&protocol, &single);
        let inv1 = ccchecker::schema_count(&single, &obligations.agreement[0]);
        let inv2 = ccchecker::schema_count(&single, &obligations.validity[0]);
        assert!(inv1 >= inv2, "{}", protocol.name());
    }
}
