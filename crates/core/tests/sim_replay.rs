//! Simulator replay: every checker counterexample — from the Table II
//! benchmark and from generated protocol families — re-executes at the
//! *process level* through `ccsim::bridge` to the exact violating
//! configuration.
//!
//! `counterexample_replay` re-applies schedules through `cccounter`'s own
//! semantics; this suite goes one semantics further down: the bridge
//! explodes each configuration into individual automaton copies and
//! re-fires every scheduled rule against a specific copy, with guards
//! evaluated by `ccta::Guard::holds` — a code path independent of the
//! checker's compiled guard bounds.  Agreement configuration-by-
//! configuration between the two executors is the simulator leg of the
//! three-oracle cross-check.

use ccchecker::{CheckStatus, CheckerOptions, ExplicitChecker, Spec};
use cccore::{obligations_for, verify_protocol, VerifierConfig};
use cccounter::CounterSystem;
use ccprotocols::family::FamilyParams;
use ccsim::bridge::replay_schedule;

/// Replays `ce` through both executors and asserts they agree on every
/// configuration, ending in the violating one.
fn assert_simulator_reproduces(sys: &CounterSystem, ce: &ccchecker::Counterexample, ctx: &str) {
    // structural acyclicity violations carry no schedule to replay
    if ce.schedule.is_empty() {
        assert!(ce.explanation.contains("cycle"), "{ctx}");
        return;
    }
    let path = ce
        .schedule
        .apply(sys, &ce.initial)
        .unwrap_or_else(|e| panic!("{ctx}: counter semantics must replay: {e:?}"));
    let sim = replay_schedule(sys, &ce.initial, &ce.schedule)
        .unwrap_or_else(|e| panic!("{ctx}: simulator must replay: {e}"));
    assert_eq!(
        sim.len(),
        path.configs().len(),
        "{ctx}: executors disagree on path length"
    );
    for (step, (s, c)) in sim.iter().zip(path.configs()).enumerate() {
        assert_eq!(
            s, c,
            "{ctx}: simulator diverges from counter semantics at step {step}"
        );
    }
}

#[test]
fn every_benchmark_violation_replays_in_the_simulator() {
    let config = VerifierConfig::quick();
    let mut replayed = 0usize;
    for protocol in ccprotocols::all_protocols() {
        let single_round = protocol.single_round();
        let result = verify_protocol(&protocol, &config);
        // obligations are looked up only to keep names in failure contexts
        let obligations = obligations_for(&protocol, &single_round);
        let specs = obligations.all();
        for property in [&result.agreement, &result.validity, &result.termination] {
            for report in &property.reports {
                assert!(
                    specs.iter().any(|s| s.name() == report.spec_name),
                    "unknown obligation {}",
                    report.spec_name
                );
                for outcome in &report.outcomes {
                    if outcome.outcome.status != CheckStatus::Violated {
                        continue;
                    }
                    let ce = outcome
                        .outcome
                        .counterexample
                        .as_ref()
                        .expect("violated outcomes carry a counterexample");
                    let sys = CounterSystem::new(single_round.clone(), ce.params.clone())
                        .expect("counterexample valuations are admissible");
                    let ctx = format!("{}/{}", protocol.name(), report.spec_name);
                    assert_simulator_reproduces(&sys, ce, &ctx);
                    replayed += 1;
                }
            }
        }
    }
    // the benchmark contains at least the MMR14 binding refutation
    assert!(replayed >= 1, "no benchmark violation was found to replay");
}

#[test]
fn every_generated_family_violation_replays_in_the_simulator() {
    // a small but varied slice of the family parameter space; the checker
    // crate's family_differential suite covers the full 200+ corpus
    let presets = [
        FamilyParams::default(),
        FamilyParams {
            phases: 3,
            width: 1,
            guard_density: 80,
            ..FamilyParams::default()
        },
        FamilyParams {
            faults: ccprotocols::family::FaultModel::Crash,
            ..FamilyParams::default()
        },
    ];
    let mut replayed = 0usize;
    for (pi, params) in presets.iter().enumerate() {
        for seed in 0..24u64 {
            let fam = params.instantiate(0x51A4_0000 + pi as u64 * 0x100 + seed);
            let sys = CounterSystem::new(fam.single_round.clone(), fam.valuation.clone())
                .expect("generated valuations are admissible");
            let specs = Spec::family_catalogue(&fam.single_round, &fam.obligations);
            let outcomes =
                ExplicitChecker::with_options(&sys, CheckerOptions::default()).check_all(&specs);
            for (spec, outcome) in specs.iter().zip(&outcomes) {
                if outcome.status != CheckStatus::Violated {
                    continue;
                }
                let ce = outcome
                    .counterexample
                    .as_ref()
                    .expect("violated outcomes carry a counterexample");
                let ctx = format!("family seed {:#x}, {}", fam.seed, spec.name());
                assert_simulator_reproduces(&sys, ce, &ctx);
                replayed += 1;
            }
        }
    }
    assert!(replayed >= 1, "no family violation was found to replay");
}
