//! Golden-file pin of the `cccore::fingerprint` values.
//!
//! The daemon's durable verdict log (`ccserve`) stores verdicts keyed by
//! these fingerprints and replays them across restarts — and across
//! *builds*: a binary upgrade reopens logs written by its predecessor.  A
//! silent fingerprint drift would not crash anything; it would quietly
//! orphan every logged verdict (never matching a lookup again) or, far
//! worse, alias a recovered verdict onto the wrong question.  So the
//! catalogue below — every Table II protocol in both round forms, their
//! full obligation catalogues, generated-family points, and a spread of
//! valuations — is pinned to a checked-in golden file.
//!
//! On an *intentional* fingerprint change (which invalidates existing logs
//! — say so in the changelog), re-bless with:
//!
//! ```text
//! CC_BLESS_FINGERPRINTS=1 cargo test -p cccore --test fingerprint_stability
//! ```

use cccore::fingerprint::{fnv64_str, FNV_BASIS};
use cccore::{obligations_for, spec_fingerprint, system_fingerprint, valuation_fingerprint};
use ccprotocols::family::{FamilyParams, FaultModel};
use ccta::ParamValuation;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("fingerprints.txt")
}

/// Renders the full catalogue as sorted `name = 0x...` lines.
fn render_catalogue() -> String {
    let mut lines = Vec::new();
    let mut push = |name: String, fp: u64| lines.push(format!("{name} = {fp:#018x}"));

    push("fnv/basis".into(), FNV_BASIS);
    push("fnv/fold-abc".into(), fnv64_str(FNV_BASIS, "abc"));

    for protocol in ccprotocols::all_protocols() {
        let name = protocol.name().to_string();
        let rd = protocol.single_round();
        push(
            format!("system/{name}/multi-round"),
            system_fingerprint(protocol.model()),
        );
        push(
            format!("system/{name}/single-round"),
            system_fingerprint(&rd),
        );
        for spec in obligations_for(&protocol, &rd).all() {
            push(
                format!("spec/{name}/{}", spec.name()),
                spec_fingerprint(spec),
            );
        }
    }

    for seed in 0..3u64 {
        let fam = FamilyParams::default().instantiate(seed);
        push(
            format!("family/default/seed{seed}"),
            system_fingerprint(&fam.single_round),
        );
    }
    let crash = FamilyParams {
        faults: FaultModel::Crash,
        ..FamilyParams::default()
    }
    .instantiate(1);
    push(
        "family/crash/seed1".into(),
        system_fingerprint(&crash.single_round),
    );

    for values in [
        vec![],
        vec![0],
        vec![4, 1, 1],
        vec![4, 1, 2],
        vec![11, 1, 1, 1],
        vec![u64::MAX, 0, 1],
    ] {
        let label = values
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",");
        push(
            format!("valuation/[{label}]"),
            valuation_fingerprint(&ParamValuation::new(values)),
        );
    }

    lines.sort();
    let mut out = String::new();
    for line in lines {
        writeln!(out, "{line}").unwrap();
    }
    out
}

#[test]
fn fingerprints_match_the_checked_in_golden_file() {
    let rendered = render_catalogue();
    let path = golden_path();

    if std::env::var("CC_BLESS_FINGERPRINTS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &rendered).expect("write golden file");
        eprintln!(
            "blessed {} entries into {}",
            rendered.lines().count(),
            path.display()
        );
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with CC_BLESS_FINGERPRINTS=1 to create it",
            path.display()
        )
    });

    if golden == rendered {
        return;
    }
    // pinpoint the drift rather than dumping two ~100-line blobs
    let golden_lines: Vec<&str> = golden.lines().collect();
    let rendered_lines: Vec<&str> = rendered.lines().collect();
    let mut diffs = Vec::new();
    for (g, r) in golden_lines.iter().zip(&rendered_lines) {
        if g != r {
            diffs.push(format!("  golden:  {g}\n  current: {r}"));
        }
    }
    match golden_lines.len() {
        l if l < rendered_lines.len() => {
            for r in &rendered_lines[l..] {
                diffs.push(format!("  (new)    {r}"));
            }
        }
        l if l > rendered_lines.len() => {
            for g in &golden_lines[rendered_lines.len()..] {
                diffs.push(format!("  (gone)   {g}"));
            }
        }
        _ => {}
    }
    panic!(
        "fingerprints drifted from {} — this invalidates every durable verdict \
         log written by earlier builds.  If intentional, re-bless with \
         CC_BLESS_FINGERPRINTS=1.  Drift:\n{}",
        path.display(),
        diffs.join("\n")
    );
}
