//! Counterexample replay: every violation the verifier reports on the
//! Table II benchmark must be a *real* execution.
//!
//! The engine-equivalence and determinism suites compare counterexample
//! schedules between engines, but never re-execute them against the query
//! that was violated.  This suite closes that gap: for every violated
//! obligation found across all eight benchmark protocols, the reported
//! schedule is re-applied step by step through `cccounter`'s schedule
//! application (every step's applicability is re-validated), and the
//! resulting path is checked to *genuinely* violate the obligation:
//!
//! * `NeverFrom` / `CoverNever` — the monitor bits accumulate along the
//!   path and become fully set exactly at the final configuration (any
//!   earlier position would have fired the violation there instead).
//! * `ExistsAvoidOneOf` — the adversary strategy path cumulatively
//!   occupies every tracked set, completing at its final configuration.
//! * `NonBlocking` — the path ends in a terminal configuration stranding
//!   an automaton outside the border-copy sinks.

use ccchecker::{
    check_over_sweep_with_stats, CheckStatus, CheckerOptions, LocSet, Spec, StartRestriction,
};
use cccore::{obligations_for, verify_protocol, VerifierConfig};
use cccounter::{CounterSystem, Path};
use ccta::prelude::*;
use ccta::LocClass;

/// The first path position at which every given location set has been
/// occupied at least once (cumulatively), if any.
fn first_cumulative_cover(path: &Path, sets: &[&ccchecker::LocSet]) -> Option<usize> {
    let mut covered = vec![false; sets.len()];
    for (i, cfg) in path.configs().iter().enumerate() {
        for (j, set) in sets.iter().enumerate() {
            if set.is_occupied(cfg) {
                covered[j] = true;
            }
        }
        if covered.iter().all(|&c| c) {
            return Some(i);
        }
    }
    None
}

/// Replays one reported counterexample through the counter system and
/// asserts that the resulting execution genuinely violates `spec`.
fn assert_genuine_violation(
    sys: &CounterSystem,
    spec: &Spec,
    ce: &ccchecker::Counterexample,
    protocol: &str,
) {
    // structural acyclicity violations carry no schedule to replay
    if ce.explanation.contains("cycle") {
        assert!(ce.schedule.is_empty());
        return;
    }
    // step-by-step re-execution: `apply` re-validates the applicability of
    // every scheduled step against the counter-system semantics
    let path = ce.schedule.apply(sys, &ce.initial).unwrap_or_else(|e| {
        panic!(
            "{protocol}/{}: counterexample schedule does not replay: {e:?}",
            spec.name()
        )
    });
    assert_eq!(path.len(), ce.schedule.len());
    let ctx = format!("{protocol}/{}", spec.name());
    match spec {
        Spec::NeverFrom { forbidden, .. } => {
            assert_eq!(
                first_cumulative_cover(&path, &[forbidden]),
                Some(path.configs().len() - 1),
                "{ctx}: the path must first occupy {} at its final configuration",
                forbidden.name()
            );
        }
        Spec::CoverNever {
            trigger, forbidden, ..
        } => {
            assert_eq!(
                first_cumulative_cover(&path, &[trigger, forbidden]),
                Some(path.configs().len() - 1),
                "{ctx}: the path must complete occupying {} and {} at its final configuration",
                trigger.name(),
                forbidden.name()
            );
        }
        Spec::ExistsAvoidOneOf { forbidden_sets, .. } => {
            let sets: Vec<&ccchecker::LocSet> = forbidden_sets.iter().collect();
            assert_eq!(
                first_cumulative_cover(&path, &sets),
                Some(path.configs().len() - 1),
                "{ctx}: the adversary strategy must cumulatively occupy every tracked set"
            );
        }
        Spec::NonBlocking { .. } => {
            let last = path.last();
            assert!(
                sys.is_terminal(last),
                "{ctx}: a blocking counterexample must end in a terminal configuration"
            );
            let model = sys.model();
            let blocked = model.loc_ids().any(|l| {
                last.counter(l, 0) > 0 && model.location(l).class() != LocClass::BorderCopy
            });
            assert!(
                blocked,
                "{ctx}: the terminal configuration must strand an automaton outside the sinks"
            );
        }
    }
}

/// A voting-style model with one extra exit `go_bad : S -> Bad` guarded by
/// `v0 >= n - t + 1`.  Correct processes can raise `v0` to at most
/// `n - f`, so at `(n, t, f) = (5, 1, 1)` the guard bound 5 exceeds the
/// attainable 4 and `Bad` is unreachable — while the relax-only step to
/// `t = 2` lowers the bound to 4 and unlocks it.  `Bad`'s only exit needs
/// `v0 >= n`, which correct processes can never reach, so every execution
/// entering `Bad` blocks there.
fn relaxable_model() -> SystemModel {
    let env = ccta::env::byzantine_common_coin_env(2);
    let k = env.num_params();
    let n = env.param_id("n").unwrap();
    let t = env.param_id("t").unwrap();
    let f = env.param_id("f").unwrap();
    let mut b = SystemBuilder::new("relaxable", env);
    let v0 = b.shared_var("v0");
    let v1 = b.shared_var("v1");
    let cc0 = b.coin_var("cc0");
    let cc1 = b.coin_var("cc1");

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    let s = b.process_location("S", LocClass::Intermediate, None);
    let bad = b.process_location("Bad", LocClass::Intermediate, None);
    let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
    let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));

    b.start_rule(j0, i0);
    b.start_rule(j1, i1);
    b.rule("bcast0", i0, s, Guard::top(), Update::increment(v0));
    b.rule("bcast1", i1, s, Guard::top(), Update::increment(v1));
    let quorum = LinearExpr::param(k, n)
        .sub(&LinearExpr::param(k, t))
        .sub(&LinearExpr::param(k, f));
    b.rule("maj0", s, e0, Guard::ge(v0, quorum.clone()), Update::none());
    b.rule("maj1", s, e1, Guard::ge(v1, quorum), Update::none());
    b.rule(
        "coin0",
        s,
        e0,
        Guard::ge(cc0, LinearExpr::constant(k, 1)),
        Update::none(),
    );
    b.rule(
        "coin1",
        s,
        e1,
        Guard::ge(cc1, LinearExpr::constant(k, 1)),
        Update::none(),
    );
    // unlocked only once t rises: v0 >= n - t + 1
    let trap = LinearExpr::param(k, n)
        .sub(&LinearExpr::param(k, t))
        .plus_const(1);
    b.rule("go_bad", s, bad, Guard::ge(v0, trap), Update::none());
    // a correct-process dead end: v0 >= n is unattainable with f >= 1
    b.rule(
        "stuck",
        bad,
        e0,
        Guard::ge(v0, LinearExpr::param(k, n)),
        Update::none(),
    );
    b.round_switch(e0, j0);
    b.round_switch(e1, j1);

    let jc = b.coin_location("JC", LocClass::Border, None);
    let ic = b.coin_location("IC", LocClass::Initial, None);
    let h0 = b.coin_location("H0", LocClass::Intermediate, None);
    let h1 = b.coin_location("H1", LocClass::Intermediate, None);
    let c0 = b.coin_location("C0", LocClass::Final, Some(BinValue::Zero));
    let c1 = b.coin_location("C1", LocClass::Final, Some(BinValue::One));
    b.start_rule(jc, ic);
    b.coin_toss(
        "toss",
        ic,
        vec![(h0, Probability::HALF), (h1, Probability::HALF)],
        Guard::top(),
        Update::none(),
    );
    b.rule("publish0", h0, c0, Guard::top(), Update::increment(cc0));
    b.rule("publish1", h1, c1, Guard::top(), Update::increment(cc1));
    b.round_switch(c0, jc);
    b.round_switch(c1, jc);

    b.build().expect("relaxable model must validate")
}

#[test]
fn counterexamples_from_extended_graphs_replay() {
    // The incremental sweep extends the (5,1,1,1) graphs across the
    // relax-only step to (5,2,1,1), and every violation of the second
    // valuation — a monitored reachability of the newly-unlocked Bad and a
    // blocking terminal inside it — is reconstructed from the *extended*
    // graph (product-BFS parents for the monitored query, re-derived
    // first-discovery parents for the blocking scan).  Both must replay
    // step for step and genuinely violate their specs.
    let single = relaxable_model().single_round().unwrap();
    let valuations = [
        ParamValuation::new(vec![5, 1, 1, 1]),
        ParamValuation::new(vec![5, 2, 1, 1]),
    ];
    let specs = vec![
        Spec::NeverFrom {
            name: "never-bad".into(),
            start: StartRestriction::Unanimous(BinValue::Zero),
            forbidden: LocSet::from_names(&single, "Bad", &["Bad"]),
        },
        Spec::NonBlocking {
            name: "termination".into(),
            start: StartRestriction::RoundStart,
        },
    ];
    let (reports, stats) = check_over_sweep_with_stats(
        &single,
        &specs,
        &valuations,
        CheckerOptions::default()
            .with_graph_cache(true)
            .with_incremental_sweep(true),
        1,
    );
    // the relax-only step was actually taken as an extension
    assert!(
        stats.extended_groups() > 0,
        "the sweep never extended a graph: {stats}"
    );
    let mut replayed = 0usize;
    for (report, spec) in reports.iter().zip(&specs) {
        // unreachable trap at the tight valuation, sprung at the relaxed one
        assert_eq!(
            report.outcomes[0].outcome.status,
            CheckStatus::Holds,
            "{}",
            report.spec_name
        );
        assert_eq!(
            report.outcomes[1].outcome.status,
            CheckStatus::Violated,
            "{}",
            report.spec_name
        );
        let ce = report.outcomes[1]
            .outcome
            .counterexample
            .as_ref()
            .expect("violated outcomes carry a counterexample");
        let sys = CounterSystem::new(single.clone(), ce.params.clone()).expect("admissible");
        assert_genuine_violation(&sys, spec, ce, "relaxable");
        replayed += 1;
    }
    assert_eq!(replayed, specs.len());
}

#[test]
fn every_benchmark_violation_replays_to_a_violating_configuration() {
    let config = VerifierConfig::quick();
    let mut replayed = 0usize;
    for protocol in ccprotocols::all_protocols() {
        let single_round = protocol.single_round();
        let obligations = obligations_for(&protocol, &single_round);
        let specs = obligations.all();
        let result = verify_protocol(&protocol, &config);
        for property in [&result.agreement, &result.validity, &result.termination] {
            for report in &property.reports {
                let spec = specs
                    .iter()
                    .find(|s| s.name() == report.spec_name)
                    .unwrap_or_else(|| panic!("unknown obligation {}", report.spec_name));
                for outcome in &report.outcomes {
                    if outcome.outcome.status != CheckStatus::Violated {
                        continue;
                    }
                    let ce = outcome
                        .outcome
                        .counterexample
                        .as_ref()
                        .expect("violated outcomes carry a counterexample");
                    assert_eq!(ce.params, outcome.params);
                    let sys = CounterSystem::new(single_round.clone(), ce.params.clone())
                        .expect("counterexample valuations are admissible");
                    assert_genuine_violation(&sys, spec, ce, protocol.name());
                    replayed += 1;
                }
            }
        }
    }
    // the benchmark is known to contain at least one violation (the MMR14
    // adaptive-adversary attack refutes its binding condition); if this
    // count drops to zero the suite stopped testing anything
    assert!(replayed >= 1, "no violation was found to replay");
}
