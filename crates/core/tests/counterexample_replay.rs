//! Counterexample replay: every violation the verifier reports on the
//! Table II benchmark must be a *real* execution.
//!
//! The engine-equivalence and determinism suites compare counterexample
//! schedules between engines, but never re-execute them against the query
//! that was violated.  This suite closes that gap: for every violated
//! obligation found across all eight benchmark protocols, the reported
//! schedule is re-applied step by step through `cccounter`'s schedule
//! application (every step's applicability is re-validated), and the
//! resulting path is checked to *genuinely* violate the obligation:
//!
//! * `NeverFrom` / `CoverNever` — the monitor bits accumulate along the
//!   path and become fully set exactly at the final configuration (any
//!   earlier position would have fired the violation there instead).
//! * `ExistsAvoidOneOf` — the adversary strategy path cumulatively
//!   occupies every tracked set, completing at its final configuration.
//! * `NonBlocking` — the path ends in a terminal configuration stranding
//!   an automaton outside the border-copy sinks.

use ccchecker::{CheckStatus, Spec};
use cccore::{obligations_for, verify_protocol, VerifierConfig};
use cccounter::{CounterSystem, Path};
use ccta::LocClass;

/// The first path position at which every given location set has been
/// occupied at least once (cumulatively), if any.
fn first_cumulative_cover(path: &Path, sets: &[&ccchecker::LocSet]) -> Option<usize> {
    let mut covered = vec![false; sets.len()];
    for (i, cfg) in path.configs().iter().enumerate() {
        for (j, set) in sets.iter().enumerate() {
            if set.is_occupied(cfg) {
                covered[j] = true;
            }
        }
        if covered.iter().all(|&c| c) {
            return Some(i);
        }
    }
    None
}

/// Replays one reported counterexample through the counter system and
/// asserts that the resulting execution genuinely violates `spec`.
fn assert_genuine_violation(
    sys: &CounterSystem,
    spec: &Spec,
    ce: &ccchecker::Counterexample,
    protocol: &str,
) {
    // structural acyclicity violations carry no schedule to replay
    if ce.explanation.contains("cycle") {
        assert!(ce.schedule.is_empty());
        return;
    }
    // step-by-step re-execution: `apply` re-validates the applicability of
    // every scheduled step against the counter-system semantics
    let path = ce.schedule.apply(sys, &ce.initial).unwrap_or_else(|e| {
        panic!(
            "{protocol}/{}: counterexample schedule does not replay: {e:?}",
            spec.name()
        )
    });
    assert_eq!(path.len(), ce.schedule.len());
    let ctx = format!("{protocol}/{}", spec.name());
    match spec {
        Spec::NeverFrom { forbidden, .. } => {
            assert_eq!(
                first_cumulative_cover(&path, &[forbidden]),
                Some(path.configs().len() - 1),
                "{ctx}: the path must first occupy {} at its final configuration",
                forbidden.name()
            );
        }
        Spec::CoverNever {
            trigger, forbidden, ..
        } => {
            assert_eq!(
                first_cumulative_cover(&path, &[trigger, forbidden]),
                Some(path.configs().len() - 1),
                "{ctx}: the path must complete occupying {} and {} at its final configuration",
                trigger.name(),
                forbidden.name()
            );
        }
        Spec::ExistsAvoidOneOf { forbidden_sets, .. } => {
            let sets: Vec<&ccchecker::LocSet> = forbidden_sets.iter().collect();
            assert_eq!(
                first_cumulative_cover(&path, &sets),
                Some(path.configs().len() - 1),
                "{ctx}: the adversary strategy must cumulatively occupy every tracked set"
            );
        }
        Spec::NonBlocking { .. } => {
            let last = path.last();
            assert!(
                sys.is_terminal(last),
                "{ctx}: a blocking counterexample must end in a terminal configuration"
            );
            let model = sys.model();
            let blocked = model.loc_ids().any(|l| {
                last.counter(l, 0) > 0 && model.location(l).class() != LocClass::BorderCopy
            });
            assert!(
                blocked,
                "{ctx}: the terminal configuration must strand an automaton outside the sinks"
            );
        }
    }
}

#[test]
fn every_benchmark_violation_replays_to_a_violating_configuration() {
    let config = VerifierConfig::quick();
    let mut replayed = 0usize;
    for protocol in ccprotocols::all_protocols() {
        let single_round = protocol.single_round();
        let obligations = obligations_for(&protocol, &single_round);
        let specs = obligations.all();
        let result = verify_protocol(&protocol, &config);
        for property in [&result.agreement, &result.validity, &result.termination] {
            for report in &property.reports {
                let spec = specs
                    .iter()
                    .find(|s| s.name() == report.spec_name)
                    .unwrap_or_else(|| panic!("unknown obligation {}", report.spec_name));
                for outcome in &report.outcomes {
                    if outcome.outcome.status != CheckStatus::Violated {
                        continue;
                    }
                    let ce = outcome
                        .outcome
                        .counterexample
                        .as_ref()
                        .expect("violated outcomes carry a counterexample");
                    assert_eq!(ce.params, outcome.params);
                    let sys = CounterSystem::new(single_round.clone(), ce.params.clone())
                        .expect("counterexample valuations are admissible");
                    assert_genuine_violation(&sys, spec, ce, protocol.name());
                    replayed += 1;
                }
            }
        }
    }
    // the benchmark is known to contain at least one violation (the MMR14
    // adaptive-adversary attack refutes its binding condition); if this
    // count drops to zero the suite stopped testing anything
    assert!(replayed >= 1, "no violation was found to replay");
}
