//! Seeded fault injection at the daemon's own sites: admission, response
//! serialization, socket write.  Lives in its own integration-test binary
//! so the process-global fault statics cannot leak into other suites; the
//! tests here serialize on a local mutex for the same reason.

mod common;

use ccchecker::fault;
use ccserve::wire::Response;
use ccserve::ServeClient;
use common::{family_check, single_slot_config, start, tiny_params, wait_for_stats};
use std::sync::Mutex;
use std::time::Duration;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn admission_fault_degrades_to_typed_error() {
    let _guard = serialized();
    let (server, addr) = start(single_slot_config(8));
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    client.ping().expect("warm up");

    fault::arm_panic(fault::SITE_ADMISSION, 0, 1);
    let resp = client
        .request(&family_check(1, tiny_params(), 1, 0))
        .expect("error response");
    let hits = fault::disarm();
    assert!(hits >= 1, "the admission injector must have fired");
    match resp {
        Response::Error { id: 1, detail } => {
            assert!(detail.contains("admission"), "detail: {detail}")
        }
        other => panic!("expected Error, got {other:?}"),
    }

    // the daemon survives: the very next request runs to a verdict
    match client
        .request(&family_check(2, tiny_params(), 1, 0))
        .expect("verdict after fault")
    {
        Response::Verdict { id: 2, .. } => {}
        other => panic!("expected Verdict, got {other:?}"),
    }
    // the completed counter is bumped after the response frame is written,
    // so poll rather than asserting immediately
    let stats = wait_for_stats(addr, Duration::from_secs(10), |s| s.completed == 1);
    assert_eq!(stats.errors, 1);
    server.shutdown();
}

#[test]
fn response_encode_fault_falls_back_to_minimal_error() {
    let _guard = serialized();
    let (server, addr) = start(single_slot_config(8));
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    client.ping().expect("warm up");

    // arm one shot before sending (only the daemon fires this site): the
    // verdict's encode panics, the daemon falls back to a minimal typed
    // Error carrying the same request id
    fault::arm_panic(fault::SITE_RESPONSE_ENCODE, 0, 1);
    client
        .send(&family_check(3, tiny_params(), 1, 0))
        .expect("send");
    let resp = client.recv().expect("fallback response");
    let hits = fault::disarm();
    assert!(hits >= 1, "the encode injector must have fired");
    match resp {
        Response::Error { id: 3, detail } => {
            assert!(detail.contains("serialization"), "detail: {detail}")
        }
        other => panic!("expected fallback Error, got {other:?}"),
    }

    // the connection stays in sync and serves the next request normally
    match client
        .request(&family_check(4, tiny_params(), 1, 0))
        .expect("verdict after fault")
    {
        Response::Verdict { id: 4, .. } => {}
        other => panic!("expected Verdict, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn socket_write_fault_kills_the_connection_but_not_the_daemon() {
    let _guard = serialized();
    let (server, addr) = start(single_slot_config(8));
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    client.ping().expect("warm up");

    // the write of the verdict frame panics: the daemon declares the
    // connection dead and shuts the socket, so the client sees EOF
    fault::arm_panic(fault::SITE_SOCKET_WRITE, 0, 1);
    client
        .send(&family_check(5, tiny_params(), 1, 0))
        .expect("send");
    let read = client.recv();
    let hits = fault::disarm();
    assert!(hits >= 1, "the socket-write injector must have fired");
    assert!(
        read.is_err(),
        "the poisoned connection must close: {read:?}"
    );

    // no slot leak: the worker and queue drain, the response is accounted
    // as orphaned, and a fresh connection gets served
    let stats = wait_for_stats(addr, Duration::from_secs(60), |s| {
        s.active_jobs == 0 && s.queue_depth == 0 && s.orphaned >= 1
    });
    assert_eq!(stats.completed, 0);
    let mut fresh = ServeClient::connect_tcp(addr).expect("reconnect");
    match fresh
        .request(&family_check(6, tiny_params(), 1, 0))
        .expect("verdict on fresh connection")
    {
        Response::Verdict { id: 6, .. } => {}
        other => panic!("expected Verdict, got {other:?}"),
    }
    server.shutdown();
}
