//! Wire-level and lifecycle robustness for the daemon: frame corruption,
//! oversize rejection, request validation, overload shedding, deadline
//! degradation, disconnect cancellation, cache reuse, and a direct
//! cross-check of daemon verdicts against an in-process `CheckJob`.

mod common;

use ccchecker::{CheckJob, CheckerOptions, Spec};
use ccserve::server::ServeConfig;
use ccserve::wire::{CheckRequest, Priority, Request, Response, Source, WireError, MAGIC};
use ccserve::ServeClient;
use common::{family_check, single_slot_config, slow_check, start, tiny_params, wait_for_stats};
use std::time::Duration;

const SOAK_WAIT: Duration = Duration::from_secs(120);

#[test]
fn ping_and_stats_roundtrip() {
    let (server, addr) = start(ServeConfig::default());
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    client.ping().expect("ping");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.admitted, 0);
    assert_eq!(stats.active_jobs, 0);
    server.shutdown();
}

#[cfg(unix)]
#[test]
fn unix_socket_ping() {
    use ccserve::server::Server;
    let path = std::env::temp_dir().join(format!("ccserve-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = Server::bind_unix(&path, ServeConfig::default()).expect("bind unix");
    let mut client = ServeClient::connect_unix(&path).expect("connect unix");
    client.ping().expect("ping over unix socket");
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn malformed_payload_is_rejected_but_connection_survives() {
    let (server, addr) = start(ServeConfig::default());
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    // a sound frame around an unknown request tag: the stream is still in
    // sync, so the daemon rejects and keeps serving
    client.send_raw_payload(&[0xFF, 1, 2, 3]).expect("send");
    match client.recv().expect("rejection") {
        Response::Rejected { id: 0, .. } => {}
        other => panic!("expected Rejected, got {other:?}"),
    }
    client
        .ping()
        .expect("connection must survive a payload rejection");
    // a truncated payload inside a sound frame likewise
    client.send_raw_payload(&[1]).expect("send");
    assert!(matches!(
        client.recv().expect("rejection"),
        Response::Rejected { id: 0, .. }
    ));
    client.ping().expect("still alive after truncated payload");
    assert!(server.stats().rejected >= 2);
    server.shutdown();
}

#[test]
fn bad_magic_closes_the_connection() {
    let (server, addr) = start(ServeConfig::default());
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    client
        .send_raw_bytes(&[0xDE, 0xAD, 0xBE, 0xEF, 4, 0, 0, 0, 1, 2, 3, 4])
        .expect("send garbage header");
    match client.recv().expect("rejection before hangup") {
        Response::Rejected { id: 0, reason } => {
            assert!(reason.contains("magic"), "reason: {reason}")
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    // the server hangs up: the next read sees EOF (or a reset)
    assert!(client.recv().is_err());
    // fresh connections keep working
    let mut fresh = ServeClient::connect_tcp(addr).expect("reconnect");
    fresh.ping().expect("server survives bad-magic clients");
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_and_connection_closed() {
    let config = ServeConfig {
        max_frame_bytes: 64,
        ..ServeConfig::default()
    };
    let (server, addr) = start(config);
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    client
        .send_raw_payload(&[0u8; 128])
        .expect("send oversized");
    match client.recv().expect("rejection before hangup") {
        Response::Rejected { id: 0, reason } => {
            assert!(reason.contains("oversized"), "reason: {reason}")
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert!(client.recv().is_err());
    server.shutdown();
}

#[test]
fn truncated_frame_then_disconnect_leaves_no_residue() {
    let (server, addr) = start(ServeConfig::default());
    {
        let mut client = ServeClient::connect_tcp(addr).expect("connect");
        // declare 100 payload bytes but deliver only 10, then vanish
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&[7u8; 10]);
        client.send_raw_bytes(&bytes).expect("send truncated frame");
        client.disconnect();
    }
    // the reader must notice the EOF and unwind without admitting anything
    let stats = wait_for_stats(addr, Duration::from_secs(10), |s| {
        s.admitted == 0 && s.active_jobs == 0
    });
    assert_eq!(stats.queue_depth, 0);
    server.shutdown();
}

#[test]
fn semantic_rejections_are_typed() {
    let (server, addr) = start(ServeConfig::default());
    let mut client = ServeClient::connect_tcp(addr).expect("connect");

    let mut check = |req: Request| match client.request(&req).expect("response") {
        Response::Rejected { reason, .. } => reason,
        other => panic!("expected Rejected, got {other:?}"),
    };

    let reason = check(Request::Check(CheckRequest {
        id: 1,
        priority: Priority::Normal,
        deadline_ms: 0,
        source: Source::Protocol("no-such-protocol".into()),
        valuations: vec![],
        obligations: vec![],
        progress: false,
        park_on_interrupt: false,
    }));
    assert!(reason.contains("unknown protocol"), "reason: {reason}");

    let reason = check(Request::Check(CheckRequest {
        id: 2,
        priority: Priority::Normal,
        deadline_ms: 0,
        source: Source::Family {
            params: tiny_params(),
            seed: 1,
        },
        valuations: vec![vec![1, 2]],
        obligations: vec![],
        progress: false,
        park_on_interrupt: false,
    }));
    assert!(reason.contains("arity"), "reason: {reason}");

    let reason = check(Request::Check(CheckRequest {
        id: 3,
        priority: Priority::Normal,
        deadline_ms: 0,
        source: Source::Family {
            params: tiny_params(),
            seed: 1,
        },
        valuations: vec![vec![0; arity_of_tiny_family()]],
        obligations: vec![],
        progress: false,
        park_on_interrupt: false,
    }));
    assert!(reason.contains("inadmissible"), "reason: {reason}");

    let reason = check(Request::Check(CheckRequest {
        id: 4,
        priority: Priority::Normal,
        deadline_ms: 0,
        source: Source::Family {
            params: tiny_params(),
            seed: 1,
        },
        valuations: vec![],
        obligations: vec!["NoSuchObligation".into()],
        progress: false,
        park_on_interrupt: false,
    }));
    assert!(
        reason.contains("no matching obligations"),
        "reason: {reason}"
    );

    assert_eq!(server.stats().rejected, 4);
    server.shutdown();
}

fn arity_of_tiny_family() -> usize {
    tiny_params().instantiate(1).single_round.env().num_params()
}

#[test]
fn verdicts_match_an_in_process_check_job() {
    let params = tiny_params();
    let seed = 5;
    let family = params.instantiate(seed);
    let specs = Spec::family_catalogue(&family.single_round, &family.obligations);
    let sys = cccounter::CounterSystem::new(family.single_round.clone(), family.valuation.clone())
        .expect("counter system");
    let job = CheckJob::new(&sys, &specs, CheckerOptions::default());
    let (expected, _) = job
        .run()
        .completed()
        .expect("oracle job must run to completion");

    let (server, addr) = start(single_slot_config(8));
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    let resp = client
        .request(&Request::Check(CheckRequest {
            id: 42,
            priority: Priority::High,
            deadline_ms: 0,
            source: Source::Family { params, seed },
            valuations: vec![family.valuation.values().to_vec()],
            obligations: vec![],
            progress: false,
            park_on_interrupt: false,
        }))
        .expect("verdict");
    let cells = match resp {
        Response::Verdict { id: 42, cells, .. } => cells,
        other => panic!("expected Verdict, got {other:?}"),
    };
    assert_eq!(cells.len(), 1);
    let cell = &cells[0];
    assert_eq!(cell.valuation, family.valuation.values().to_vec());
    assert_eq!(cell.verdicts.len(), expected.len());
    for ((verdict, spec), outcome) in cell.verdicts.iter().zip(&specs).zip(&expected) {
        assert_eq!(verdict.name, spec.name());
        assert_eq!(
            verdict.code,
            cccore::verdict_code(outcome.status),
            "daemon and in-process verdicts disagree on {}",
            spec.name()
        );
    }
    server.shutdown();
}

#[test]
fn repeated_requests_hit_the_result_cache() {
    let (server, addr) = start(single_slot_config(8));
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    let req = family_check(1, tiny_params(), 9, 0);
    let first = match client.request(&req).expect("first verdict") {
        Response::Verdict { cells, .. } => cells,
        other => panic!("expected Verdict, got {other:?}"),
    };
    let definite: usize = first
        .iter()
        .flat_map(|c| &c.verdicts)
        .filter(|v| v.code != b'?')
        .count();
    let second = match client.request(&req).expect("second verdict") {
        Response::Verdict { cells, .. } => cells,
        other => panic!("expected Verdict, got {other:?}"),
    };
    let cached: usize = second
        .iter()
        .flat_map(|c| &c.verdicts)
        .filter(|v| v.cached)
        .count();
    // only definite verdicts are cacheable; every one of them must be
    // served from the cache the second time around
    assert_eq!(cached, definite, "definite verdicts must come from cache");
    if definite > 0 {
        assert!(server.stats().cache_hits as usize >= definite);
    }
    server.shutdown();
}

#[test]
fn tight_deadline_degrades_to_unknown_verdicts() {
    let (server, addr) = start(single_slot_config(8));
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    let resp = client
        .request(&slow_check(7, 30))
        .expect("degraded verdict");
    let cells = match resp {
        Response::Verdict { id: 7, cells, .. } => cells,
        other => panic!("expected Verdict, got {other:?}"),
    };
    assert!(!cells.is_empty());
    let mut degraded = 0;
    for verdict in cells.iter().flat_map(|c| &c.verdicts) {
        if verdict.code == b'?' && verdict.detail.starts_with("interrupted") {
            degraded += 1;
        }
    }
    assert!(
        degraded > 0,
        "a 30ms deadline on a second-long workload must trip at least one obligation: {cells:?}"
    );
    server.shutdown();
}

#[test]
fn overload_sheds_typed_and_completes_all_admitted() {
    // one worker, a one-deep queue: pipelining six slow requests must shed
    // at least one with a typed Overloaded, and every request still gets
    // exactly one terminal response
    let (server, addr) = start(single_slot_config(1));
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    let total = 6u64;
    for id in 1..=total {
        client.send(&slow_check(id, 400)).expect("pipeline send");
    }
    let mut seen = std::collections::HashMap::new();
    let mut overloaded = 0;
    for _ in 0..total {
        let resp = client.recv().expect("terminal response");
        let id = resp.request_id().expect("terminal responses carry an id");
        assert!(resp.is_terminal(), "unexpected non-terminal {resp:?}");
        if let Response::Overloaded {
            queue_depth,
            capacity,
            ..
        } = &resp
        {
            assert_eq!(*capacity, 1);
            assert!(*queue_depth <= *capacity);
            overloaded += 1;
        }
        assert!(
            seen.insert(id, resp).is_none(),
            "request {id} answered twice"
        );
    }
    assert_eq!(seen.len() as u64, total, "every request answered once");
    assert!(overloaded >= 1, "a full queue must shed explicitly");

    let stats = wait_for_stats(addr, SOAK_WAIT, |s| {
        s.active_jobs == 0 && s.queue_depth == 0
    });
    assert_eq!(stats.admitted + stats.shed, total);
    assert_eq!(
        stats.completed, stats.admitted,
        "every admitted request must complete: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn disconnect_mid_job_cancels_and_releases_the_slot() {
    let (server, addr) = start(single_slot_config(4));
    {
        let mut client = ServeClient::connect_tcp(addr).expect("connect");
        // no deadline: only the disconnect can stop this job
        client.send(&slow_check(11, 0)).expect("send");
        // let the worker pick it up, then vanish
        wait_for_stats(addr, Duration::from_secs(30), |s| s.admitted == 1);
        std::thread::sleep(Duration::from_millis(200));
        client.disconnect();
    }
    // the job must observe the cancellation and release its slot without a
    // response; nothing may stay queued or running
    let stats = wait_for_stats(addr, SOAK_WAIT, |s| {
        s.orphaned >= 1 && s.active_jobs == 0 && s.queue_depth == 0
    });
    assert_eq!(stats.completed, 0, "no response for an orphaned request");
    // the freed slot serves new clients promptly
    let mut fresh = ServeClient::connect_tcp(addr).expect("reconnect");
    match fresh
        .request(&family_check(12, tiny_params(), 1, 0))
        .expect("post-disconnect verdict")
    {
        Response::Verdict { id: 12, .. } => {}
        other => panic!("expected Verdict, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn client_side_wire_errors_are_typed() {
    // decoding garbage client-side produces typed errors, not panics
    assert!(matches!(
        ccserve::wire::decode_response(&[0xEE]),
        Err(WireError::Malformed(_))
    ));
    assert!(matches!(
        ccserve::wire::decode_request(&[]),
        Err(WireError::Malformed(_))
    ));
}
