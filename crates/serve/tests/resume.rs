//! Resumable jobs, end to end and in process: a deadline-tripped
//! `park_on_interrupt` request yields a resume token; resuming continues
//! the job to the same verdicts a fresh unbounded run produces; bad tokens
//! fail typed.

mod common;

use ccprotocols::family::{FamilyParams, FaultModel};
use ccserve::server::ServeConfig;
use ccserve::wire::{
    CellReport, CheckRequest, Priority, Request, Response, ResumeRejectCause, ResumeRequest,
    ResumeToken, Source,
};
use ccserve::ServeClient;
use common::start;
use std::net::SocketAddr;

/// A family point big enough that a 1 ms deadline reliably trips before the
/// grid finishes, yet small enough to complete unbounded in debug builds.
fn parkable_params() -> FamilyParams {
    FamilyParams {
        phases: 2,
        width: 2,
        fanout: 1,
        guard_density: 0,
        shared_vars: 1,
        coin_vars: 2,
        faults: FaultModel::Byzantine,
        resilience: 2,
    }
}

fn parkable_check(id: u64, deadline_ms: u64, park: bool) -> Request {
    Request::Check(CheckRequest {
        id,
        priority: Priority::Normal,
        deadline_ms,
        source: Source::Family {
            params: parkable_params(),
            seed: 11,
        },
        valuations: vec![],
        obligations: vec![],
        progress: false,
        park_on_interrupt: park,
    })
}

fn single_worker() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_capacity: 8,
        max_valuations: 2,
        ..ServeConfig::default()
    }
}

/// Sends `req`, expecting a Verdict; returns its cells and resume token.
fn verdict_of(client: &mut ServeClient, req: &Request) -> (Vec<CellReport>, Option<ResumeToken>) {
    match client.request(req).expect("response") {
        Response::Verdict { cells, resume, .. } => (cells, resume),
        other => panic!("expected Verdict, got {other:?}"),
    }
}

/// Parks a job on a fresh connection, returning its degraded cells and the
/// promised token.
fn park_one(addr: SocketAddr, id: u64) -> (Vec<CellReport>, ResumeToken) {
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    let (cells, resume) = verdict_of(&mut client, &parkable_check(id, 1, true));
    let token = resume.expect("a 1ms deadline with park_on_interrupt must park");
    assert!(token.expires_in_ms > 0, "token must carry its TTL");
    let resumable = cells
        .iter()
        .flat_map(|c| &c.verdicts)
        .any(|v| v.code == b'?' && v.detail.ends_with("; resumable"));
    assert!(
        resumable,
        "degraded verdicts must advertise resumability: {cells:?}"
    );
    (cells, token)
}

fn resume_req(id: u64, token: u64) -> Request {
    Request::Resume(ResumeRequest {
        id,
        token,
        priority: Priority::Normal,
        deadline_ms: 0,
        progress: false,
        park_on_interrupt: false,
    })
}

#[test]
fn parked_job_resumes_to_the_same_verdicts_as_a_fresh_run() {
    // the oracle: a fresh unbounded run of the same request
    let (oracle_server, oracle_addr) = start(single_worker());
    let mut oracle_client = ServeClient::connect_tcp(oracle_addr).expect("connect");
    let (oracle_cells, oracle_resume) =
        verdict_of(&mut oracle_client, &parkable_check(1, 0, false));
    assert!(oracle_resume.is_none(), "an unbounded run never parks");
    assert!(
        oracle_cells
            .iter()
            .flat_map(|c| &c.verdicts)
            .all(|v| v.code != b'?'),
        "the oracle run must be definite: {oracle_cells:?}"
    );
    oracle_server.shutdown();

    // park on a separate daemon (separate cache), then resume unbounded
    let (server, addr) = start(single_worker());
    let (_, token) = park_one(addr, 2);
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    let (resumed_cells, resumed_token) = verdict_of(&mut client, &resume_req(3, token.token));
    assert!(
        resumed_token.is_none(),
        "an unbounded resume runs to completion"
    );

    assert_eq!(resumed_cells.len(), oracle_cells.len());
    for (resumed, oracle) in resumed_cells.iter().zip(&oracle_cells) {
        assert_eq!(resumed.valuation, oracle.valuation);
        assert_eq!(resumed.verdicts.len(), oracle.verdicts.len());
        for (r, o) in resumed.verdicts.iter().zip(&oracle.verdicts) {
            assert_eq!(r.name, o.name);
            assert_eq!(
                r.code, o.code,
                "resumed verdict for {} diverged from the fresh run",
                r.name
            );
            assert_eq!(
                (r.states, r.transitions),
                (o.states, o.transitions),
                "resume must be bit-identical, not merely agree, on {}",
                r.name
            );
        }
    }

    // the token is one-shot: a second resume fails typed
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    match client.request(&resume_req(4, token.token)).expect("resp") {
        Response::ResumeRejected { id: 4, cause } => {
            assert_eq!(cause, ResumeRejectCause::Unknown, "consumed token");
        }
        other => panic!("expected ResumeRejected, got {other:?}"),
    }

    let stats = server.stats();
    assert_eq!(stats.parked, 1, "{stats:?}");
    assert_eq!(stats.resumed, 1, "{stats:?}");
    assert_eq!(stats.resume_rejected, 1, "{stats:?}");
    server.shutdown();
}

#[test]
fn unknown_tokens_reject_typed() {
    let (server, addr) = start(single_worker());
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    match client.request(&resume_req(9, 0xbad_c0de)).expect("resp") {
        Response::ResumeRejected { id: 9, cause } => {
            assert_eq!(cause, ResumeRejectCause::Unknown);
        }
        other => panic!("expected ResumeRejected, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn lru_pressure_evicts_the_oldest_token_with_a_typed_cause() {
    let config = ServeConfig {
        checkpoint_slots: Some(1),
        ..single_worker()
    };
    let (server, addr) = start(config);
    let (_, first) = park_one(addr, 10);
    let (_, second) = park_one(addr, 11);
    assert_ne!(first.token, second.token);

    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    match client.request(&resume_req(12, first.token)).expect("resp") {
        Response::ResumeRejected { id: 12, cause } => {
            assert_eq!(cause, ResumeRejectCause::Evicted, "displaced by LRU");
        }
        other => panic!("expected ResumeRejected, got {other:?}"),
    }
    // the younger token still resumes
    let (cells, _) = verdict_of(&mut client, &resume_req(13, second.token));
    assert!(!cells.is_empty());

    let stats = server.stats();
    assert_eq!(stats.checkpoints_evicted, 1, "{stats:?}");
    server.shutdown();
}

#[test]
fn expired_tokens_reject_typed() {
    let config = ServeConfig {
        checkpoint_ttl_ms: 50,
        ..single_worker()
    };
    let (server, addr) = start(config);
    let (_, token) = park_one(addr, 20);
    assert!(token.expires_in_ms <= 50);
    std::thread::sleep(std::time::Duration::from_millis(120));

    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    match client.request(&resume_req(21, token.token)).expect("resp") {
        Response::ResumeRejected { id: 21, cause } => {
            assert_eq!(cause, ResumeRejectCause::Expired);
        }
        other => panic!("expected ResumeRejected, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn zero_checkpoint_slots_disable_parking_without_breaking_degradation() {
    let config = ServeConfig {
        checkpoint_slots: Some(0),
        ..single_worker()
    };
    let (server, addr) = start(config);
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    let (cells, resume) = verdict_of(&mut client, &parkable_check(30, 1, true));
    assert!(resume.is_none(), "parking disabled: no token");
    let degraded = cells
        .iter()
        .flat_map(|c| &c.verdicts)
        .filter(|v| v.code == b'?')
        .count();
    assert!(degraded > 0, "the deadline still degrades: {cells:?}");
    assert!(
        cells
            .iter()
            .flat_map(|c| &c.verdicts)
            .all(|v| !v.detail.contains("resumable")),
        "no token, no resumable promise: {cells:?}"
    );
    server.shutdown();
}
