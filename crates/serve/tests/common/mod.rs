//! Shared helpers for the daemon integration suites.
// each test binary compiles this module separately and uses its own subset
#![allow(dead_code)]

use ccprotocols::family::{FamilyParams, FaultModel};
use ccserve::server::{ServeConfig, Server};
use ccserve::wire::{CheckRequest, Priority, Request, Source, StatsSnapshot};
use ccserve::ServeClient;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// A family small enough for sub-second checks even in debug builds.
pub fn tiny_params() -> FamilyParams {
    FamilyParams {
        phases: 1,
        width: 1,
        fanout: 1,
        guard_density: 0,
        shared_vars: 1,
        coin_vars: 2,
        faults: FaultModel::Byzantine,
        resilience: 2,
    }
}

/// A check that keeps a worker busy for on the order of a second in
/// release builds (Rabin83 at a deliberately large valuation) — the tests
/// always bound it with a deadline or a cancellation.
pub fn slow_check(id: u64, deadline_ms: u64) -> Request {
    Request::Check(CheckRequest {
        id,
        priority: Priority::Normal,
        deadline_ms,
        source: Source::Protocol("Rabin83".into()),
        valuations: vec![vec![11, 1, 1, 1]],
        obligations: vec![],
        progress: false,
        park_on_interrupt: false,
    })
}

/// A check request for the given family point.
pub fn family_check(id: u64, params: FamilyParams, seed: u64, deadline_ms: u64) -> Request {
    Request::Check(CheckRequest {
        id,
        priority: Priority::Normal,
        deadline_ms,
        source: Source::Family { params, seed },
        valuations: vec![],
        obligations: vec![],
        progress: false,
        park_on_interrupt: false,
    })
}

/// A small single-slot server configuration: one worker, tiny queue, one
/// valuation per request.
pub fn single_slot_config(queue_capacity: usize) -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_capacity,
        max_valuations: 1,
        ..ServeConfig::default()
    }
}

/// Starts a TCP server on an ephemeral port.
pub fn start(config: ServeConfig) -> (Server, SocketAddr) {
    let server = Server::bind_tcp("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("tcp address");
    (server, addr)
}

/// Polls the server stats endpoint until `pred` holds, failing after
/// `timeout`.
pub fn wait_for_stats(
    addr: SocketAddr,
    timeout: Duration,
    mut pred: impl FnMut(&StatsSnapshot) -> bool,
) -> StatsSnapshot {
    let deadline = Instant::now() + timeout;
    loop {
        let mut probe = ServeClient::connect_tcp(addr).expect("connect stats probe");
        let stats = probe.stats().expect("stats request");
        if pred(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "stats condition not reached before timeout; last snapshot: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}
