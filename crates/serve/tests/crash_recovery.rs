//! The crash campaign: a *real* `ccserve` process is killed — `SIGKILL`
//! from outside, or `std::process::abort` fired from the always-compiled
//! fault sites inside the durability paths (`SITE_LOG_APPEND` mid-record,
//! `SITE_LOG_FSYNC` before the sync, `SITE_COMPACT_SWAP` before the rename)
//! — and restarted on the same cache log.  Invariants, per the durability
//! contract in the crate docs:
//!
//! * the recovered cache is a prefix of what was acknowledged: every
//!   definite verdict acknowledged before the crash is served identically
//!   after the restart;
//! * no wrong verdict is ever served: post-restart answers match a fresh
//!   in-process `CheckJob` oracle;
//! * a resume token issued before the crash either continues the job or
//!   fails typed — it never hangs and never fabricates verdicts.

mod common;

use ccchecker::{CheckJob, CheckerOptions, Spec};
use ccprotocols::family::{FamilyParams, FaultModel};
use ccserve::wire::{CellReport, CheckRequest, Priority, Request, Response, ResumeRequest, Source};
use ccserve::ServeClient;
use common::tiny_params;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SPAWN_WAIT: Duration = Duration::from_secs(60);

/// A `ccserve` child process bound to an ephemeral port, with its durable
/// log in `dir`.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cc-crash-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Spawns the real binary; `fault` is a `CC_FAULT_CRASH` spec
/// (`site:skip[:shots]`) arming an abort at a durability site.
fn spawn_daemon(dir: &Path, fault: Option<&str>) -> Daemon {
    let port_file = dir.join("port");
    let _ = std::fs::remove_file(&port_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ccserve"));
    cmd.args([
        "--tcp",
        "127.0.0.1:0",
        "--port-file",
        port_file.to_str().unwrap(),
        "--cache-log",
        dir.join("verdicts.cclog").to_str().unwrap(),
        "--fsync-policy",
        "always",
        "--checkpoint-slots",
        "8",
        "--workers",
        "2",
        "--stats-interval",
        "3600",
    ])
    .env("CC_SERVE_COMPACT_EVERY", "4")
    .stdin(Stdio::null())
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    match fault {
        Some(spec) => cmd.env("CC_FAULT_CRASH", spec),
        None => cmd.env_remove("CC_FAULT_CRASH"),
    };
    let mut child = cmd.spawn().expect("spawn ccserve");

    let deadline = Instant::now() + SPAWN_WAIT;
    let addr = loop {
        if let Some(status) = child.try_wait().expect("child status") {
            panic!("ccserve exited during startup: {status}");
        }
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if let Ok(addr) = s.trim().parse::<SocketAddr>() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "ccserve never wrote {port_file:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    Daemon { child, addr }
}

/// A panicking test must not leak its child: an orphaned daemon holds the
/// test harness's output pipe open (hanging piped `cargo test` runs) and
/// can contaminate later runs.
impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Daemon {
    /// `kill -9`, then reap.
    fn kill(mut self) {
        self.child.kill().expect("SIGKILL");
        self.child.wait().expect("reap");
    }

    /// Waits for the child to die on its own (an armed fault firing),
    /// failing the test if it stays alive past the deadline.
    fn wait_for_death(mut self) {
        let deadline = Instant::now() + SPAWN_WAIT;
        loop {
            if self.child.try_wait().expect("child status").is_some() {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "armed fault never killed the daemon"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn family_req(id: u64, seed: u64, deadline_ms: u64, park: bool) -> Request {
    Request::Check(CheckRequest {
        id,
        priority: Priority::Normal,
        deadline_ms,
        source: Source::Family {
            params: tiny_params(),
            seed,
        },
        valuations: vec![],
        obligations: vec![],
        progress: false,
        park_on_interrupt: park,
    })
}

/// A request pinned to the family's base valuation — the single cell the
/// in-process oracle checks (an empty valuation list would make the daemon
/// auto-sweep several cells instead).
fn oracle_req(id: u64, seed: u64) -> Request {
    let family = tiny_params().instantiate(seed);
    Request::Check(CheckRequest {
        id,
        priority: Priority::Normal,
        deadline_ms: 0,
        source: Source::Family {
            params: tiny_params(),
            seed,
        },
        valuations: vec![family.valuation.values().to_vec()],
        obligations: vec![],
        progress: false,
        park_on_interrupt: false,
    })
}

/// One (name, code, states, transitions) row per obligation per cell —
/// the bit-identity footprint of a verdict, minus cache provenance.
type VerdictShape = Vec<Vec<(String, u8, u64, u64)>>;

fn shape(cells: &[CellReport]) -> VerdictShape {
    cells
        .iter()
        .map(|c| {
            c.verdicts
                .iter()
                .map(|v| (v.name.clone(), v.code, v.states, v.transitions))
                .collect()
        })
        .collect()
}

/// Sends one check and returns the verdict cells.
fn ask(addr: SocketAddr, req: &Request) -> Vec<CellReport> {
    let mut client = ServeClient::connect_tcp(addr).expect("connect");
    match client.request(req).expect("verdict") {
        Response::Verdict { cells, .. } => cells,
        other => panic!("expected Verdict, got {other:?}"),
    }
}

/// The in-process oracle for a family point: a fresh `CheckJob` over the
/// full obligation catalogue at the family's quick valuation.
fn oracle_shape(seed: u64) -> VerdictShape {
    let family = tiny_params().instantiate(seed);
    let specs = Spec::family_catalogue(&family.single_round, &family.obligations);
    let sys = cccounter::CounterSystem::new(family.single_round.clone(), family.valuation.clone())
        .expect("counter system");
    let (outcomes, _) = CheckJob::new(&sys, &specs, CheckerOptions::default())
        .run()
        .completed()
        .expect("oracle completes");
    vec![specs
        .iter()
        .zip(&outcomes)
        .map(|(spec, o)| {
            (
                spec.name().to_string(),
                cccore::verdict_code(o.status),
                o.states_explored as u64,
                o.transitions_explored as u64,
            )
        })
        .collect()]
}

#[test]
fn sigkill_recovery_serves_every_acknowledged_verdict_unchanged() {
    let dir = scratch_dir("sigkill");
    let daemon = spawn_daemon(&dir, None);

    // acknowledge a batch of definite verdicts
    let seeds: Vec<u64> = (0..6).collect();
    let mut acked = Vec::new();
    let mut acked_definite = 0u64;
    for &seed in &seeds {
        let cells = ask(daemon.addr, &family_req(seed, seed, 0, false));
        acked_definite += cells
            .iter()
            .flat_map(|c| &c.verdicts)
            .filter(|v| v.code != b'?' && !v.cached)
            .count() as u64;
        acked.push(shape(&cells));
    }
    assert!(acked_definite > 0, "the workload must produce verdicts");
    daemon.kill();

    // restart on the same log: everything acknowledged must be back
    let daemon = spawn_daemon(&dir, None);
    let recovered = ServeClient::connect_tcp(daemon.addr)
        .expect("connect")
        .stats()
        .expect("stats")
        .log_recovered;
    assert!(
        recovered >= acked_definite,
        "fsync=always: all {acked_definite} acknowledged definite verdicts \
         must be recovered, got {recovered}"
    );

    for (&seed, before) in seeds.iter().zip(&acked) {
        let after = ask(daemon.addr, &family_req(100 + seed, seed, 0, false));
        assert_eq!(
            &shape(&after),
            before,
            "seed {seed}: post-restart verdicts diverged from what was acknowledged"
        );
        assert!(
            after.iter().flat_map(|c| &c.verdicts).all(|v| v.cached),
            "seed {seed}: recovered verdicts must come from the preloaded cache"
        );
    }

    // and the recovered answers are *right*, not merely consistent
    assert_eq!(
        shape(&ask(daemon.addr, &oracle_req(999, 2))),
        oracle_shape(2)
    );
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aborts_at_every_durability_site_recover_to_correct_verdicts() {
    // (site, skip): SITE_LOG_APPEND=6 fires *between* the two halves of a
    // record write, leaving a genuinely torn record; SITE_LOG_FSYNC=7 dies
    // before the sync; SITE_COMPACT_SWAP=8 dies with a staged next
    // generation not yet swapped in (CC_SERVE_COMPACT_EVERY=4 forces
    // compaction within the batch).
    for (label, fault) in [
        ("append-torn-first", "6:0"),
        ("append-torn-later", "6:3"),
        ("fsync", "7:2"),
        ("compact-swap", "8:0"),
    ] {
        let dir = scratch_dir(&format!("abort-{label}"));
        let daemon = spawn_daemon(&dir, Some(fault));
        let addr = daemon.addr;

        // drive until the armed abort kills the daemon mid-request; record
        // what was actually acknowledged before death
        let mut acked: Vec<(u64, VerdictShape)> = Vec::new();
        for seed in 0..12u64 {
            let Ok(mut client) = ServeClient::connect_tcp(addr) else {
                break;
            };
            if client.send(&family_req(seed, seed % 4, 0, false)).is_err() {
                break;
            }
            match client.recv() {
                Ok(Response::Verdict { cells, .. }) => acked.push((seed % 4, shape(&cells))),
                Ok(other) => panic!("[{label}] unexpected response {other:?}"),
                Err(_) => break,
            }
        }
        daemon.wait_for_death();

        // restart clean: a torn tail is truncated, never an error, and
        // every acknowledged verdict is still answered identically
        let daemon = spawn_daemon(&dir, None);
        ServeClient::connect_tcp(daemon.addr)
            .expect("connect")
            .ping()
            .expect("post-recovery ping");
        for (i, (seed, before)) in acked.iter().enumerate() {
            let after = ask(daemon.addr, &family_req(500 + i as u64, *seed, 0, false));
            assert_eq!(
                &shape(&after),
                before,
                "[{label}] seed {seed}: acknowledged verdict changed across the crash"
            );
        }
        // oracle cross-check: the recovered state serves the truth
        assert_eq!(
            shape(&ask(daemon.addr, &oracle_req(998, 1))),
            oracle_shape(1),
            "[{label}] recovered daemon disagrees with the in-process oracle"
        );
        daemon.kill();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A family point slow enough that a 1 ms deadline reliably parks.
fn parkable_req(id: u64) -> Request {
    Request::Check(CheckRequest {
        id,
        priority: Priority::Normal,
        deadline_ms: 1,
        source: Source::Family {
            params: FamilyParams {
                phases: 2,
                width: 2,
                fanout: 1,
                guard_density: 0,
                shared_vars: 1,
                coin_vars: 2,
                faults: FaultModel::Byzantine,
                resilience: 2,
            },
            seed: 11,
        },
        valuations: vec![],
        obligations: vec![],
        progress: false,
        park_on_interrupt: true,
    })
}

#[test]
fn resume_tokens_survive_sigkill_or_fail_typed() {
    let dir = scratch_dir("resume");
    let daemon = spawn_daemon(&dir, None);

    let mut client = ServeClient::connect_tcp(daemon.addr).expect("connect");
    let token = match client.request(&parkable_req(1)).expect("verdict") {
        Response::Verdict { resume, .. } => {
            resume
                .expect("1ms deadline with park_on_interrupt parks")
                .token
        }
        other => panic!("expected Verdict, got {other:?}"),
    };
    daemon.kill();

    // the checkpoint was fsync'd before the token was promised, so the
    // restarted daemon must honour it — and run it to completion
    let daemon = spawn_daemon(&dir, None);
    let mut client = ServeClient::connect_tcp(daemon.addr).expect("connect");
    let resp = client
        .request(&Request::Resume(ResumeRequest {
            id: 2,
            token,
            priority: Priority::Normal,
            deadline_ms: 0,
            progress: false,
            park_on_interrupt: false,
        }))
        .expect("a resume across restart answers, it never hangs");
    match resp {
        Response::Verdict { cells, resume, .. } => {
            assert!(resume.is_none(), "unbounded resume completes");
            assert!(
                cells
                    .iter()
                    .flat_map(|c| &c.verdicts)
                    .all(|v| v.code != b'?'),
                "a completed resume never fabricates or degrades: {cells:?}"
            );
        }
        Response::ResumeRejected { .. } => {
            // typed rejection is the contract's other legal outcome; with
            // fsync'd checkpoints it indicates eviction pressure, not loss
        }
        other => panic!("resume across restart must terminate typed, got {other:?}"),
    }

    // a token the daemon never issued still rejects typed after recovery
    match client
        .request(&Request::Resume(ResumeRequest {
            id: 3,
            token: token.wrapping_add(0x5eed),
            priority: Priority::Normal,
            deadline_ms: 0,
            progress: false,
            park_on_interrupt: false,
        }))
        .expect("typed answer")
    {
        Response::ResumeRejected { id: 3, .. } => {}
        other => panic!("expected ResumeRejected, got {other:?}"),
    }
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}
