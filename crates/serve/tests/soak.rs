//! Seeded multi-client soak: several clients pipeline randomized requests
//! (mixed priorities, deadlines, families, and opt-in progress streams)
//! while one client vanishes mid-stream.  Invariants: every request on a
//! live connection gets exactly one terminal response (interim `Progress`
//! frames ride in between and are tolerated and counted, never required),
//! the daemon leaks no worker slots or queue entries, and the counters
//! reconcile.

mod common;

use ccprotocols::family::{FamilyParams, FaultModel};
use ccserve::server::ServeConfig;
use ccserve::wire::{CheckRequest, Priority, Request, Response, Source};
use ccserve::ServeClient;
use common::{start, wait_for_stats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Duration;

const CLIENTS: u64 = 3;
const REQUESTS_PER_CLIENT: u64 = 12;
const SOAK_WAIT: Duration = Duration::from_secs(180);

fn soak_params(rng: &mut StdRng) -> FamilyParams {
    FamilyParams {
        phases: rng.gen_range(1..3usize),
        width: rng.gen_range(1..3usize),
        fanout: 1,
        guard_density: 0,
        shared_vars: 1,
        coin_vars: 2,
        faults: FaultModel::Byzantine,
        resilience: 2,
    }
}

#[test]
fn seeded_multi_client_soak() {
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 4,
        max_valuations: 1,
        ..ServeConfig::default()
    };
    let (server, addr) = start(config);

    let mut handles = Vec::new();
    for client_idx in 0..CLIENTS {
        let handle = std::thread::Builder::new()
            .name(format!("soak-client-{client_idx}"))
            .spawn(move || soak_client(addr, client_idx))
            .expect("spawn client");
        handles.push(handle);
    }
    let mut live_answered = 0u64;
    for handle in handles {
        live_answered += handle.join().expect("client thread");
    }
    // clients 1..N read every response; client 0 disconnects mid-stream
    assert!(live_answered >= (CLIENTS - 1) * REQUESTS_PER_CLIENT);

    // drain: no stuck jobs, no queued residue, counters reconcile
    let stats = wait_for_stats(addr, SOAK_WAIT, |s| {
        s.active_jobs == 0 && s.queue_depth == 0
    });
    assert_eq!(
        stats.admitted,
        stats.completed + stats.orphaned + stats.errors,
        "every admitted request must terminate exactly once: {stats:?}"
    );
    assert_eq!(stats.errors, 0, "no internal errors expected: {stats:?}");
    assert_eq!(
        stats.rejected, 0,
        "all soak requests are well-formed: {stats:?}"
    );
    assert_eq!(
        stats.admitted + stats.shed,
        CLIENTS * REQUESTS_PER_CLIENT,
        "admission accounts for every request: {stats:?}"
    );
    server.shutdown();
}

/// Runs one pipelined client; returns how many terminal responses it saw.
/// Client 0 disconnects after sending, abandoning its responses.
fn soak_client(addr: std::net::SocketAddr, client_idx: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(0x00CC_5E11 ^ client_idx);
    let mut sender = ServeClient::connect_tcp(addr).expect("connect");
    let mut receiver = sender.try_clone().expect("clone receive half");

    let mut expected = HashSet::new();
    for n in 0..REQUESTS_PER_CLIENT {
        let id = client_idx * 1000 + n;
        let deadline_ms = match rng.gen_range(0..3u32) {
            0 => 0,   // unbounded
            1 => 1,   // trips almost immediately
            _ => 200, // tight but roomy enough for tiny families
        };
        let priority = match rng.gen_range(0..3u32) {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        let req = Request::Check(CheckRequest {
            id,
            priority,
            deadline_ms,
            source: Source::Family {
                params: soak_params(&mut rng),
                seed: rng.gen_range(0..3u64),
            },
            valuations: vec![],
            obligations: vec![],
            // roughly half the requests subscribe to interim progress
            // frames; the receive loop must stay correct either way
            progress: rng.gen_bool(0.5),
            park_on_interrupt: false,
        });
        sender.send(&req).expect("pipelined send");
        expected.insert(id);
        if rng.gen_bool(0.3) {
            std::thread::sleep(Duration::from_millis(rng.gen_range(1..20u64)));
        }
    }

    if client_idx == 0 {
        // vanish mid-stream: the daemon must cancel whatever is queued or
        // running for this connection and release the slots
        sender.disconnect();
        return 0;
    }

    let mut answered = HashSet::new();
    let mut progress_frames = 0u64;
    while answered.len() < expected.len() {
        let resp = receiver.recv().expect("terminal response");
        if !resp.is_terminal() {
            // interim progress for a subscribed request: tolerated in any
            // quantity, but only for ids we actually asked about
            assert!(
                matches!(resp, Response::Progress { .. }),
                "unexpected non-terminal {resp:?}"
            );
            let id = resp.request_id().expect("progress frames carry ids");
            assert!(expected.contains(&id), "progress for unknown id {id}");
            assert!(
                !answered.contains(&id),
                "progress for already-terminated id {id}"
            );
            progress_frames += 1;
            continue;
        }
        let id = resp.request_id().expect("terminal responses carry ids");
        assert!(expected.contains(&id), "unknown request id {id}");
        assert!(answered.insert(id), "request {id} answered twice");
    }
    eprintln!("soak client {client_idx}: {progress_frames} progress frames");
    answered.len() as u64
}
