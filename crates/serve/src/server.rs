//! The resident verification server: admission, workers, degradation.
//!
//! See the crate docs for the wire protocol and failure model.  This module
//! implements the lifecycle: an accept loop hands each connection to a
//! reader thread; readers decode frames and either answer immediately
//! (ping/stats), shed (`Overloaded`), or enqueue a [`JobEntry`]; a fixed
//! pool of worker threads drains the queue and runs each request as a
//! `ccchecker::CheckJob`, degrading deadline-tripped cells to `?` verdicts
//! and caching definite ones across requests.

use crate::cache::ResultCache;
use crate::queue::AdmissionQueue;
use crate::transport::{Listener, Stream};
use crate::wire::{
    decode_request, encode_response, write_frame, CellReport, CheckRequest, Request, Response,
    Source, SpecVerdict, StatsSnapshot, WireError, DEFAULT_MAX_FRAME,
};
use ccchecker::{
    fault, run_with_retry, CancelToken, CheckJob, CheckOutcome, CheckerOptions, JobBudget,
    JobOutcome, RetryPolicy, Spec,
};
use cccore::fingerprint::{
    spec_fingerprint, system_fingerprint, valuation_fingerprint, verdict_code,
};
use cccore::VerifierConfig;
use cccounter::CounterSystem;
use ccta::{ParamValuation, SystemModel};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads and accepts re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration.  Knob precedence is explicit value over
/// environment variable over default, matching `CheckerOptions`:
/// zero/`None` fields defer to `CC_SERVE_WORKERS`, `CC_SERVE_QUEUE`,
/// `CC_SERVE_CACHE` and `CC_SERVE_MAX_FRAME`; in-check threading keeps
/// following `CC_CHECK_THREADS` through [`CheckerOptions`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker slots (concurrent jobs).  0 = `CC_SERVE_WORKERS` or
    /// `min(4, available parallelism)`.
    pub workers: usize,
    /// Admission queue capacity across all priority bands.  0 =
    /// `CC_SERVE_QUEUE` or 64.
    pub queue_capacity: usize,
    /// Cross-request result-cache capacity.  `None` = `CC_SERVE_CACHE` or
    /// 4096; `Some(0)` disables the cache.
    pub cache_capacity: Option<usize>,
    /// Maximum frame payload in bytes.  0 = `CC_SERVE_MAX_FRAME` or 1 MiB.
    pub max_frame_bytes: usize,
    /// Maximum valuations per request (explicit or auto-selected).  0 = 4.
    pub max_valuations: usize,
    /// Supervision policy for panicking jobs: retries get a fresh
    /// `CheckJob`, with seeded-jitter backoff between attempts.
    pub retry: RetryPolicy,
    /// Checker options for each job (worker threads, caps, cache knobs).
    pub checker: CheckerOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 0,
            cache_capacity: None,
            max_frame_bytes: 0,
            max_valuations: 0,
            retry: RetryPolicy::attempts(2)
                .with_backoff(Duration::from_millis(5), Duration::from_millis(50)),
            checker: CheckerOptions::default(),
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

struct Resolved {
    workers: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    max_frame_bytes: usize,
    max_valuations: usize,
    retry: RetryPolicy,
    checker: CheckerOptions,
}

impl ServeConfig {
    fn resolve(self) -> Resolved {
        let auto_workers = || {
            std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1)
        };
        Resolved {
            workers: match self.workers {
                0 => env_usize("CC_SERVE_WORKERS").unwrap_or_else(auto_workers),
                n => n,
            }
            .max(1),
            queue_capacity: match self.queue_capacity {
                0 => env_usize("CC_SERVE_QUEUE").unwrap_or(64),
                n => n,
            },
            cache_capacity: self
                .cache_capacity
                .unwrap_or_else(|| env_usize("CC_SERVE_CACHE").unwrap_or(4096)),
            max_frame_bytes: match self.max_frame_bytes {
                0 => env_usize("CC_SERVE_MAX_FRAME").unwrap_or(DEFAULT_MAX_FRAME),
                n => n,
            },
            max_valuations: match self.max_valuations {
                0 => 4,
                n => n,
            },
            retry: self.retry,
            checker: self.checker,
        }
    }
}

/// Monotonic server counters (see [`StatsSnapshot`] for the wire form).
#[derive(Default)]
pub struct ServerStats {
    admitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    orphaned: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    active_jobs: AtomicU64,
}

impl ServerStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Per-connection shared state: the (mutexed) write side, liveness, and
/// the cancel tokens of this connection's queued/running requests.
struct ConnShared {
    writer: Mutex<Stream>,
    alive: AtomicBool,
    inflight: Mutex<HashMap<u64, CancelToken>>,
}

impl ConnShared {
    fn new(writer: Stream) -> Self {
        ConnShared {
            writer: Mutex::new(writer),
            alive: AtomicBool::new(true),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Declares the client gone: every queued or running request of this
    /// connection is cancelled so its worker slot frees up.  The order
    /// matters — `alive` drops *before* the tokens fire, so a worker that
    /// registers a fresh token and then re-checks `alive` cannot race past
    /// both signals.
    fn mark_dead(&self) {
        self.alive.store(false, Ordering::Release);
        for token in lock_ignore_poison(&self.inflight).values() {
            token.cancel();
        }
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    fn register(&self, id: u64, token: CancelToken) {
        lock_ignore_poison(&self.inflight).insert(id, token);
    }

    fn unregister(&self, id: u64) {
        lock_ignore_poison(&self.inflight).remove(&id);
    }

    /// Sends one response frame.  Serialization panics degrade to a
    /// minimal typed `Error`; write panics or IO errors declare the
    /// connection dead (cancelling its in-flight jobs, shutting the socket
    /// so the reader thread exits too) and report `false`.
    fn send(&self, resp: &Response) -> bool {
        if !self.is_alive() {
            return false;
        }
        let payload = match catch_unwind(AssertUnwindSafe(|| {
            fault::maybe_fire(fault::SITE_RESPONSE_ENCODE);
            encode_response(resp)
        })) {
            Ok(p) => p,
            Err(_) => encode_response(&Response::Error {
                id: resp.request_id().unwrap_or(0),
                detail: "response serialization failed".into(),
            }),
        };
        let wrote = catch_unwind(AssertUnwindSafe(|| {
            let mut writer = lock_ignore_poison(&self.writer);
            fault::maybe_fire(fault::SITE_SOCKET_WRITE);
            write_frame(&mut *writer, &payload)
        }));
        match wrote {
            Ok(Ok(())) => true,
            _ => {
                // re-acquire outside the failed scope (the panic path
                // released — and poisoned — the writer lock)
                lock_ignore_poison(&self.writer).shutdown_both();
                self.mark_dead();
                false
            }
        }
    }
}

/// One admitted request waiting for (or holding) a worker slot.
struct JobEntry {
    req: CheckRequest,
    conn: Arc<ConnShared>,
    admitted_at: Instant,
    cancel: CancelToken,
}

struct Ctx {
    stats: ServerStats,
    cache: ResultCache,
    queue: AdmissionQueue<JobEntry>,
    shutdown: AtomicBool,
    cfg: Resolved,
}

impl Ctx {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            admitted: self.stats.admitted.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            orphaned: self.stats.orphaned.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            active_jobs: self.stats.active_jobs.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
        }
    }
}

/// A running server.  Dropping without [`Server::shutdown`] leaves the
/// daemon threads running detached; tests and the binary call `shutdown`.
pub struct Server {
    ctx: Arc<Ctx>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    addr: Option<SocketAddr>,
}

impl Server {
    /// Binds a TCP listener (`"127.0.0.1:0"` for an ephemeral port) and
    /// starts the daemon.
    pub fn bind_tcp(addr: &str, config: ServeConfig) -> io::Result<Server> {
        Server::start(Listener::bind_tcp(addr)?, config)
    }

    /// Binds a Unix-domain socket and starts the daemon.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path, config: ServeConfig) -> io::Result<Server> {
        Server::start(Listener::bind_unix(path)?, config)
    }

    /// Starts accept, reader and worker threads over a bound listener.
    pub fn start(listener: Listener, config: ServeConfig) -> io::Result<Server> {
        let cfg = config.resolve();
        let addr = listener.local_addr();
        listener.set_nonblocking(true)?;
        let ctx = Arc::new(Ctx {
            stats: ServerStats::default(),
            cache: ResultCache::new(cfg.cache_capacity),
            queue: AdmissionQueue::new(cfg.queue_capacity),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let mut threads = Vec::new();
        for _ in 0..ctx.cfg.workers {
            let ctx = Arc::clone(&ctx);
            threads.push(std::thread::spawn(move || worker_loop(&ctx)));
        }
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let ctx = Arc::clone(&ctx);
            let conn_threads = Arc::clone(&conn_threads);
            threads.push(std::thread::spawn(move || {
                accept_loop(listener, &ctx, &conn_threads);
                // the accept loop exits only at shutdown; readers notice the
                // flag within one poll interval, so these joins terminate
                let handles: Vec<_> = lock_ignore_poison(&conn_threads).drain(..).collect();
                for h in handles {
                    let _ = h.join();
                }
            }));
        }
        Ok(Server {
            ctx,
            threads: Mutex::new(threads),
            addr,
        })
    }

    /// The bound TCP address, if serving TCP.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// A snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.ctx.snapshot()
    }

    /// Stops accepting, drains admitted work, and joins every thread.
    pub fn shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.ctx.queue.close();
        let handles: Vec<_> = lock_ignore_poison(&self.threads).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: Listener, ctx: &Arc<Ctx>, conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    while !ctx.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(stream) => {
                let ctx = Arc::clone(ctx);
                let handle = std::thread::spawn(move || serve_connection(stream, &ctx));
                lock_ignore_poison(conn_threads).push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
}

/// Fills `buf` from the stream, polling the shutdown flag between timed-out
/// reads.  Unlike `read_exact`, a timeout mid-frame keeps the bytes already
/// read, so slow writers cannot desynchronise the stream.
fn read_full(stream: &mut Stream, buf: &mut [u8], ctx: &Ctx) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        if ctx.shutdown.load(Ordering::Relaxed) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "shutting down"));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one frame with the same taxonomy as `wire::read_frame`, but
/// interruptible at shutdown.
fn read_frame_interruptible(stream: &mut Stream, ctx: &Ctx) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 8];
    read_full(stream, &mut header, ctx)?;
    let magic = u32::from_le_bytes(header[..4].try_into().unwrap());
    if magic != crate::wire::MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..].try_into().unwrap()) as usize;
    if len > ctx.cfg.max_frame_bytes {
        return Err(WireError::Oversized {
            declared: len,
            max: ctx.cfg.max_frame_bytes,
        });
    }
    let mut payload = vec![0u8; len];
    read_full(stream, &mut payload, ctx)?;
    Ok(payload)
}

fn serve_connection(stream: Stream, ctx: &Arc<Ctx>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(ConnShared::new(writer));
    let mut reader = stream;
    loop {
        match read_frame_interruptible(&mut reader, ctx) {
            Ok(payload) => match decode_request(&payload) {
                Ok(Request::Ping) => {
                    conn.send(&Response::Pong);
                }
                Ok(Request::Stats) => {
                    conn.send(&Response::Stats(ctx.snapshot()));
                }
                Ok(Request::Check(req)) => admit(req, &conn, ctx),
                Err(e) => {
                    // the frame boundary was sound, so the stream is still
                    // in sync: reject and keep serving this connection
                    ServerStats::bump(&ctx.stats.rejected);
                    conn.send(&Response::Rejected {
                        id: 0,
                        reason: e.to_string(),
                    });
                }
            },
            Err(e @ (WireError::BadMagic(_) | WireError::Oversized { .. })) => {
                // cannot resynchronise after these: reject, then hang up
                ServerStats::bump(&ctx.stats.rejected);
                conn.send(&Response::Rejected {
                    id: 0,
                    reason: e.to_string(),
                });
                break;
            }
            Err(_) => break, // disconnect, transport error, or shutdown
        }
    }
    conn.mark_dead();
    reader.shutdown_both();
}

/// Admission: register the request's cancel token, then enqueue.  A full
/// queue sheds with a typed `Overloaded` carrying the observed depth; an
/// injected admission panic degrades to a typed `Error`.  Nothing is ever
/// buffered outside the bounded queue.
fn admit(req: CheckRequest, conn: &Arc<ConnShared>, ctx: &Arc<Ctx>) {
    let id = req.id;
    let priority = req.priority;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        fault::maybe_fire(fault::SITE_ADMISSION);
        let cancel = CancelToken::new();
        conn.register(id, cancel.clone());
        let entry = JobEntry {
            req,
            conn: Arc::clone(conn),
            admitted_at: Instant::now(),
            cancel,
        };
        // box the shed entry so the closure's Err stays pointer-sized
        ctx.queue.push(entry, priority).map_err(Box::new)
    }));
    match outcome {
        Ok(Ok(())) => ServerStats::bump(&ctx.stats.admitted),
        Ok(Err(_entry)) => {
            conn.unregister(id);
            ServerStats::bump(&ctx.stats.shed);
            conn.send(&Response::Overloaded {
                id,
                queue_depth: ctx.queue.len() as u64,
                capacity: ctx.queue.capacity() as u64,
            });
        }
        Err(_) => {
            conn.unregister(id);
            ServerStats::bump(&ctx.stats.errors);
            conn.send(&Response::Error {
                id,
                detail: "admission failed".into(),
            });
        }
    }
}

fn worker_loop(ctx: &Arc<Ctx>) {
    while let Some(entry) = ctx.queue.pop() {
        ctx.stats.active_jobs.fetch_add(1, Ordering::Relaxed);
        process(entry, ctx);
        ctx.stats.active_jobs.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The resolved shape of a request: the single-round model and the
/// obligation catalogue to check on it.
struct ResolvedRequest {
    model: SystemModel,
    specs: Vec<Spec>,
    /// Auto-selected sweep for family sources (used when the request names
    /// no valuations).
    family_sweep: Vec<ParamValuation>,
}

fn resolve_source(req: &CheckRequest) -> Result<ResolvedRequest, String> {
    match &req.source {
        Source::Protocol(name) => {
            let protocol = ccprotocols::protocol_by_name(name)
                .ok_or_else(|| format!("unknown protocol {name:?}"))?;
            let model = protocol.single_round();
            let obligations = cccore::obligations_for(&protocol, &model);
            let specs = obligations.all().into_iter().cloned().collect();
            Ok(ResolvedRequest {
                model,
                specs,
                family_sweep: Vec::new(),
            })
        }
        Source::Family { params, seed } => {
            let family = params.instantiate(*seed);
            let specs = Spec::family_catalogue(&family.single_round, &family.obligations);
            Ok(ResolvedRequest {
                model: family.single_round,
                specs,
                family_sweep: family.sweep,
            })
        }
    }
}

fn degraded_verdict(spec: &Spec, detail: &str) -> SpecVerdict {
    SpecVerdict {
        name: spec.name().to_string(),
        code: b'?',
        states: 0,
        transitions: 0,
        cached: false,
        detail: detail.to_string(),
    }
}

fn outcome_verdict(spec: &Spec, outcome: &CheckOutcome, cached: bool) -> SpecVerdict {
    SpecVerdict {
        name: spec.name().to_string(),
        code: verdict_code(outcome.status),
        states: outcome.states_explored as u64,
        transitions: outcome.transitions_explored as u64,
        cached,
        detail: outcome.detail.clone(),
    }
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn process(entry: JobEntry, ctx: &Arc<Ctx>) {
    let JobEntry {
        req,
        conn,
        admitted_at,
        cancel,
    } = entry;
    let id = req.id;
    if cancel.is_cancelled() || !conn.is_alive() {
        conn.unregister(id);
        ServerStats::bump(&ctx.stats.orphaned);
        return;
    }

    let reject = |reason: String| {
        conn.unregister(id);
        ServerStats::bump(&ctx.stats.rejected);
        conn.send(&Response::Rejected { id, reason });
    };

    // Resolution (model construction) runs under the same supervision as
    // the job itself: a panic is an internal error, not a daemon crash.
    let resolved = match catch_unwind(AssertUnwindSafe(|| resolve_source(&req))) {
        Ok(Ok(r)) => r,
        Ok(Err(reason)) => return reject(reason),
        Err(payload) => {
            conn.unregister(id);
            ServerStats::bump(&ctx.stats.errors);
            conn.send(&Response::Error {
                id,
                detail: format!("request resolution panicked: {}", panic_detail(payload)),
            });
            return;
        }
    };
    let specs: Vec<Spec> = if req.obligations.is_empty() {
        resolved.specs
    } else {
        let wanted: Vec<&str> = req.obligations.iter().map(String::as_str).collect();
        let filtered: Vec<Spec> = resolved
            .specs
            .into_iter()
            .filter(|s| wanted.contains(&s.name()))
            .collect();
        if filtered.is_empty() {
            return reject("no matching obligations".into());
        }
        filtered
    };
    let model = resolved.model;

    // Valuations: explicit ones must match the environment and be
    // admissible; an empty list asks the daemon to pick small admissible
    // points itself.
    let valuations: Vec<ParamValuation> = if req.valuations.is_empty() {
        let auto = if resolved.family_sweep.is_empty() {
            VerifierConfig::quick().select_valuations(&model)
        } else {
            resolved.family_sweep
        };
        auto.into_iter().take(ctx.cfg.max_valuations).collect()
    } else {
        if req.valuations.len() > ctx.cfg.max_valuations {
            return reject(format!(
                "too many valuations: {} (max {})",
                req.valuations.len(),
                ctx.cfg.max_valuations
            ));
        }
        let env = model.env();
        let mut out = Vec::with_capacity(req.valuations.len());
        for raw in &req.valuations {
            if raw.len() != env.num_params() {
                return reject(format!(
                    "valuation arity {} does not match the {} environment parameters",
                    raw.len(),
                    env.num_params()
                ));
            }
            let v = ParamValuation::new(raw.clone());
            if !env.is_admissible(&v) {
                return reject(format!("inadmissible valuation {raw:?}"));
            }
            out.push(v);
        }
        out
    };
    if valuations.is_empty() {
        return reject("no admissible valuations".into());
    }

    // Counter systems are built up front so an unbuildable valuation is a
    // rejection, not a mid-grid error.
    let mut systems = Vec::with_capacity(valuations.len());
    for v in &valuations {
        match CounterSystem::new(model.clone(), v.clone()) {
            Ok(sys) => systems.push(sys),
            Err(e) => return reject(format!("cannot build counter system: {e}")),
        }
    }

    let deadline_at =
        (req.deadline_ms > 0).then(|| admitted_at + Duration::from_millis(req.deadline_ms));
    let system_fp = system_fingerprint(&model);
    let spec_fps: Vec<u64> = specs.iter().map(spec_fingerprint).collect();

    let mut cells = Vec::with_capacity(valuations.len());
    for (valuation, sys) in valuations.iter().zip(&systems) {
        let valuation_fp = valuation_fingerprint(valuation);
        let mut verdicts: Vec<Option<SpecVerdict>> = vec![None; specs.len()];
        let mut missing = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            match ctx.cache.get(&(system_fp, valuation_fp, spec_fps[i])) {
                Some(hit) => {
                    verdicts[i] = Some(SpecVerdict {
                        name: spec.name().to_string(),
                        code: verdict_code(hit.status),
                        states: hit.states_explored as u64,
                        transitions: hit.transitions_explored as u64,
                        cached: true,
                        detail: hit.detail,
                    });
                }
                None => missing.push(i),
            }
        }

        if !missing.is_empty() {
            let remaining = deadline_at.map(|d| d.saturating_duration_since(Instant::now()));
            if remaining.is_some_and(|r| r.is_zero()) {
                // the deadline already passed: degrade the whole cell to
                // `?` verdicts, exactly like a tripped VerifierConfig budget
                for &i in &missing {
                    verdicts[i] = Some(degraded_verdict(
                        &specs[i],
                        "interrupted: deadline exceeded",
                    ));
                }
            } else {
                let miss_specs: Vec<Spec> = missing.iter().map(|&i| specs[i].clone()).collect();
                let mut budget = JobBudget::unlimited();
                if let Some(r) = remaining {
                    budget = budget.with_deadline(r);
                }
                let ran = run_with_retry(&ctx.cfg.retry, id ^ valuation_fp, |_attempt| {
                    catch_unwind(AssertUnwindSafe(|| {
                        let job =
                            CheckJob::new(sys, &miss_specs, ctx.cfg.checker).with_budget(budget);
                        // expose the job's own token for disconnects, then
                        // re-check liveness: `mark_dead` flips `alive`
                        // before cancelling tokens, so this order cannot
                        // miss a disconnect
                        let token = job.cancel_token();
                        conn.register(id, token.clone());
                        if cancel.is_cancelled() || !conn.is_alive() {
                            token.cancel();
                        }
                        job.run()
                    }))
                    .map_err(panic_detail)
                });
                match ran {
                    Err(detail) => {
                        conn.unregister(id);
                        ServerStats::bump(&ctx.stats.errors);
                        conn.send(&Response::Error {
                            id,
                            detail: format!("job panicked on every attempt: {detail}"),
                        });
                        return;
                    }
                    Ok(JobOutcome::Completed { outcomes, .. }) => {
                        for (slot, outcome) in missing.iter().zip(&outcomes) {
                            ctx.cache
                                .insert((system_fp, valuation_fp, spec_fps[*slot]), outcome);
                            verdicts[*slot] = Some(outcome_verdict(&specs[*slot], outcome, false));
                        }
                    }
                    Ok(JobOutcome::Interrupted { .. }) => {
                        // only a disconnect cancels daemon jobs: drop the
                        // response, release the slot
                        conn.unregister(id);
                        ServerStats::bump(&ctx.stats.orphaned);
                        return;
                    }
                    Ok(JobOutcome::BudgetExceeded {
                        reason, checkpoint, ..
                    }) => {
                        let detail = format!("interrupted: {}", reason.describe());
                        for (slot, outcome) in missing.iter().zip(checkpoint.into_outcomes()) {
                            match outcome {
                                Some(o) => {
                                    ctx.cache
                                        .insert((system_fp, valuation_fp, spec_fps[*slot]), &o);
                                    verdicts[*slot] =
                                        Some(outcome_verdict(&specs[*slot], &o, false));
                                }
                                None => {
                                    verdicts[*slot] =
                                        Some(degraded_verdict(&specs[*slot], &detail));
                                }
                            }
                        }
                    }
                }
            }
        }

        cells.push(CellReport {
            valuation: valuation.values().to_vec(),
            verdicts: verdicts.into_iter().map(|v| v.unwrap()).collect(),
        });
    }

    conn.unregister(id);
    if conn.send(&Response::Verdict { id, cells }) {
        ServerStats::bump(&ctx.stats.completed);
    } else {
        ServerStats::bump(&ctx.stats.orphaned);
    }
}
