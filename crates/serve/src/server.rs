//! The resident verification server: admission, workers, degradation.
//!
//! See the crate docs for the wire protocol and failure model.  This module
//! implements the lifecycle: an accept loop hands each connection to a
//! reader thread; readers decode frames and either answer immediately
//! (ping/stats), shed (`Overloaded`), or enqueue a [`JobEntry`]; a fixed
//! pool of worker threads drains the queue and runs each request as a
//! `ccchecker::CheckJob`, degrading deadline-tripped cells to `?` verdicts
//! and caching definite ones across requests.

use crate::cache::{CacheKey, CachedVerdict, ResultCache};
use crate::queue::AdmissionQueue;
use crate::registry::{CheckpointRegistry, ParkedJob};
use crate::store::{FsyncPolicy, VerdictLog};
use crate::transport::{Listener, Stream};
use crate::wire::{
    decode_request, encode_response, write_frame, CellReport, CheckRequest, Request, Response,
    ResumeRequest, ResumeToken, Source, SpecVerdict, StatsSnapshot, WireError, DEFAULT_MAX_FRAME,
};
use ccchecker::{
    fault, run_with_retry, CancelToken, CheckJob, CheckOutcome, CheckStatus, CheckerOptions,
    JobBudget, JobCheckpoint, JobOutcome, ProgressFn, RetryPolicy, Spec,
};
use cccore::fingerprint::{
    spec_fingerprint, system_fingerprint, valuation_fingerprint, verdict_code,
};
use cccore::VerifierConfig;
use cccounter::CounterSystem;
use ccta::{ParamValuation, SystemModel};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads and accepts re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Minimum spacing between `Progress` frames of one running cell.
const PROGRESS_INTERVAL: Duration = Duration::from_millis(20);

/// Server configuration.  Knob precedence is explicit value over
/// environment variable over default, matching `CheckerOptions`:
/// zero/`None` fields defer to `CC_SERVE_WORKERS`, `CC_SERVE_QUEUE`,
/// `CC_SERVE_CACHE` and `CC_SERVE_MAX_FRAME`; in-check threading keeps
/// following `CC_CHECK_THREADS` through [`CheckerOptions`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker slots (concurrent jobs).  0 = `CC_SERVE_WORKERS` or
    /// `min(4, available parallelism)`.
    pub workers: usize,
    /// Admission queue capacity across all priority bands.  0 =
    /// `CC_SERVE_QUEUE` or 64.
    pub queue_capacity: usize,
    /// Cross-request result-cache capacity.  `None` = `CC_SERVE_CACHE` or
    /// 4096; `Some(0)` disables the cache.
    pub cache_capacity: Option<usize>,
    /// Maximum frame payload in bytes.  0 = `CC_SERVE_MAX_FRAME` or 1 MiB.
    pub max_frame_bytes: usize,
    /// Maximum valuations per request (explicit or auto-selected).  0 = 4.
    pub max_valuations: usize,
    /// Supervision policy for panicking jobs: retries get a fresh
    /// `CheckJob`, with seeded-jitter backoff between attempts.
    pub retry: RetryPolicy,
    /// Checker options for each job (worker threads, caps, cache knobs).
    pub checker: CheckerOptions,
    /// Durable verdict log path (`--cache-log`).  `None` disables
    /// durability: the cache and the checkpoint registry die with the
    /// process.
    pub cache_log: Option<PathBuf>,
    /// When verdict appends fsync (`--fsync-policy`).
    pub fsync_policy: FsyncPolicy,
    /// Parked-checkpoint registry slots (`--checkpoint-slots`).  `None` =
    /// `CC_SERVE_CKPT` or 32; `Some(0)` disables parking.
    pub checkpoint_slots: Option<usize>,
    /// Parked-checkpoint TTL in milliseconds.  0 = `CC_SERVE_CKPT_TTL_MS`
    /// or 120 000.
    pub checkpoint_ttl_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 0,
            cache_capacity: None,
            max_frame_bytes: 0,
            max_valuations: 0,
            retry: RetryPolicy::attempts(2)
                .with_backoff(Duration::from_millis(5), Duration::from_millis(50)),
            checker: CheckerOptions::default(),
            cache_log: None,
            fsync_policy: FsyncPolicy::Always,
            checkpoint_slots: None,
            checkpoint_ttl_ms: 0,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

struct Resolved {
    workers: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    max_frame_bytes: usize,
    max_valuations: usize,
    retry: RetryPolicy,
    checker: CheckerOptions,
    cache_log: Option<PathBuf>,
    fsync_policy: FsyncPolicy,
    checkpoint_slots: usize,
    checkpoint_ttl: Duration,
}

impl ServeConfig {
    fn resolve(self) -> Resolved {
        let auto_workers = || {
            std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1)
        };
        Resolved {
            workers: match self.workers {
                0 => env_usize("CC_SERVE_WORKERS").unwrap_or_else(auto_workers),
                n => n,
            }
            .max(1),
            queue_capacity: match self.queue_capacity {
                0 => env_usize("CC_SERVE_QUEUE").unwrap_or(64),
                n => n,
            },
            cache_capacity: self
                .cache_capacity
                .unwrap_or_else(|| env_usize("CC_SERVE_CACHE").unwrap_or(4096)),
            max_frame_bytes: match self.max_frame_bytes {
                0 => env_usize("CC_SERVE_MAX_FRAME").unwrap_or(DEFAULT_MAX_FRAME),
                n => n,
            },
            max_valuations: match self.max_valuations {
                0 => 4,
                n => n,
            },
            retry: self.retry,
            checker: self.checker,
            cache_log: self.cache_log,
            fsync_policy: self.fsync_policy,
            checkpoint_slots: self
                .checkpoint_slots
                .unwrap_or_else(|| env_usize("CC_SERVE_CKPT").unwrap_or(32)),
            checkpoint_ttl: Duration::from_millis(match self.checkpoint_ttl_ms {
                0 => env_usize("CC_SERVE_CKPT_TTL_MS").unwrap_or(120_000) as u64,
                ms => ms,
            }),
        }
    }
}

/// Monotonic server counters (see [`StatsSnapshot`] for the wire form).
#[derive(Default)]
pub struct ServerStats {
    admitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    orphaned: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    active_jobs: AtomicU64,
    parked: AtomicU64,
    resumed: AtomicU64,
    resume_rejected: AtomicU64,
    checkpoints_evicted: AtomicU64,
    log_recovered: AtomicU64,
    /// EWMA of recent job service time, in nanoseconds (0 = no sample yet).
    service_ns_ewma: AtomicU64,
}

impl ServerStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one observed service time into the mean (EWMA, alpha = 1/8).
    fn observe_service(&self, elapsed: Duration) {
        let sample = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let old = self.service_ns_ewma.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old - old / 8 + sample / 8
        };
        self.service_ns_ewma.store(new, Ordering::Relaxed);
    }
}

/// How long a shed client should wait before retrying: the queue depth
/// ahead of it, spread over the worker slots, times the recent mean
/// service time.  Monotone in the queue depth; clamped to [1 ms, 60 s].
fn retry_after_hint_ms(queue_depth: u64, mean_service_ns: u64, workers: u64) -> u64 {
    let mean_ms = (mean_service_ns / 1_000_000).max(1);
    let waves = queue_depth.saturating_add(1).div_ceil(workers.max(1));
    waves.saturating_mul(mean_ms).clamp(1, 60_000)
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Per-connection shared state: the (mutexed) write side, liveness, and
/// the cancel tokens of this connection's queued/running requests.
struct ConnShared {
    writer: Mutex<Stream>,
    alive: AtomicBool,
    inflight: Mutex<HashMap<u64, CancelToken>>,
}

impl ConnShared {
    fn new(writer: Stream) -> Self {
        ConnShared {
            writer: Mutex::new(writer),
            alive: AtomicBool::new(true),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Declares the client gone: every queued or running request of this
    /// connection is cancelled so its worker slot frees up.  The order
    /// matters — `alive` drops *before* the tokens fire, so a worker that
    /// registers a fresh token and then re-checks `alive` cannot race past
    /// both signals.
    fn mark_dead(&self) {
        self.alive.store(false, Ordering::Release);
        for token in lock_ignore_poison(&self.inflight).values() {
            token.cancel();
        }
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    fn register(&self, id: u64, token: CancelToken) {
        lock_ignore_poison(&self.inflight).insert(id, token);
    }

    fn unregister(&self, id: u64) {
        lock_ignore_poison(&self.inflight).remove(&id);
    }

    /// Sends one response frame.  Serialization panics degrade to a
    /// minimal typed `Error`; write panics or IO errors declare the
    /// connection dead (cancelling its in-flight jobs, shutting the socket
    /// so the reader thread exits too) and report `false`.
    fn send(&self, resp: &Response) -> bool {
        if !self.is_alive() {
            return false;
        }
        let payload = match catch_unwind(AssertUnwindSafe(|| {
            fault::maybe_fire(fault::SITE_RESPONSE_ENCODE);
            encode_response(resp)
        })) {
            Ok(p) => p,
            Err(_) => encode_response(&Response::Error {
                id: resp.request_id().unwrap_or(0),
                detail: "response serialization failed".into(),
            }),
        };
        let wrote = catch_unwind(AssertUnwindSafe(|| {
            let mut writer = lock_ignore_poison(&self.writer);
            fault::maybe_fire(fault::SITE_SOCKET_WRITE);
            write_frame(&mut *writer, &payload)
        }));
        match wrote {
            Ok(Ok(())) => true,
            _ => {
                // re-acquire outside the failed scope (the panic path
                // released — and poisoned — the writer lock)
                lock_ignore_poison(&self.writer).shutdown_both();
                self.mark_dead();
                false
            }
        }
    }
}

/// What an admitted entry asks a worker to do.
enum Work {
    /// Run a check from scratch.
    Check(CheckRequest),
    /// Continue a parked job by resume token.
    Resume(ResumeRequest),
}

impl Work {
    fn id(&self) -> u64 {
        match self {
            Work::Check(req) => req.id,
            Work::Resume(rr) => rr.id,
        }
    }
}

/// One admitted request waiting for (or holding) a worker slot.
struct JobEntry {
    work: Work,
    conn: Arc<ConnShared>,
    admitted_at: Instant,
    cancel: CancelToken,
}

struct Ctx {
    stats: ServerStats,
    cache: ResultCache,
    queue: AdmissionQueue<JobEntry>,
    registry: CheckpointRegistry,
    log: Option<Mutex<VerdictLog>>,
    shutdown: AtomicBool,
    cfg: Resolved,
}

impl Ctx {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            admitted: self.stats.admitted.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            orphaned: self.stats.orphaned.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            active_jobs: self.stats.active_jobs.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            parked: self.stats.parked.load(Ordering::Relaxed),
            resumed: self.stats.resumed.load(Ordering::Relaxed),
            resume_rejected: self.stats.resume_rejected.load(Ordering::Relaxed),
            checkpoints_evicted: self.stats.checkpoints_evicted.load(Ordering::Relaxed),
            log_recovered: self.stats.log_recovered.load(Ordering::Relaxed),
        }
    }

    /// Caches a computed outcome and, when definite and a log is
    /// configured, makes it durable *before* any response frame reports it
    /// (the prefix-of-acknowledged invariant).  Piggybacks auto-compaction
    /// on the append path.
    fn record_verdict(&self, key: CacheKey, outcome: &CheckOutcome) {
        self.cache.insert(key, outcome);
        if outcome.status == CheckStatus::Unknown {
            return;
        }
        let Some(log) = &self.log else {
            return;
        };
        let cached = CachedVerdict {
            status: outcome.status,
            states_explored: outcome.states_explored,
            transitions_explored: outcome.transitions_explored,
            detail: outcome.detail.clone(),
        };
        let mut log = lock_ignore_poison(log);
        if let Err(e) = log.append_verdict(&key, &cached) {
            eprintln!("ccserve: verdict log append failed: {e}");
            return;
        }
        if log.should_compact() {
            let verdicts = self.cache.entries();
            let checkpoints = self.registry.snapshot();
            if let Err(e) = log.compact(&verdicts, &checkpoints) {
                eprintln!("ccserve: log compaction failed: {e}");
            }
        }
    }

    /// Appends a checkpoint tombstone (consumed or evicted token).
    fn log_drop(&self, token: u64) {
        if let Some(log) = &self.log {
            if let Err(e) = lock_ignore_poison(log).append_drop(token) {
                eprintln!("ccserve: verdict log append failed: {e}");
            }
        }
    }
}

/// A running server.  Dropping without [`Server::shutdown`] leaves the
/// daemon threads running detached; tests and the binary call `shutdown`.
pub struct Server {
    ctx: Arc<Ctx>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    addr: Option<SocketAddr>,
}

impl Server {
    /// Binds a TCP listener (`"127.0.0.1:0"` for an ephemeral port) and
    /// starts the daemon.
    pub fn bind_tcp(addr: &str, config: ServeConfig) -> io::Result<Server> {
        Server::start(Listener::bind_tcp(addr)?, config)
    }

    /// Binds a Unix-domain socket and starts the daemon.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path, config: ServeConfig) -> io::Result<Server> {
        Server::start(Listener::bind_unix(path)?, config)
    }

    /// Starts accept, reader and worker threads over a bound listener.
    pub fn start(listener: Listener, config: ServeConfig) -> io::Result<Server> {
        let cfg = config.resolve();
        let addr = listener.local_addr();
        listener.set_nonblocking(true)?;
        let cache = ResultCache::new(cfg.cache_capacity);
        let registry = CheckpointRegistry::new(cfg.checkpoint_slots, cfg.checkpoint_ttl);
        let stats = ServerStats::default();
        let log = match &cfg.cache_log {
            Some(path) => {
                // the log is the durability promise: failing to open it is
                // a startup error, but a *torn* log never is — recovery
                // truncates and keeps going
                let (log, recovered) = VerdictLog::open(path, cfg.fsync_policy)?;
                stats
                    .log_recovered
                    .store(recovered.verdicts.len() as u64, Ordering::Relaxed);
                for (key, verdict) in recovered.verdicts {
                    cache.preload(key, verdict);
                }
                for (token, bytes) in recovered.checkpoints {
                    registry.recover(token, bytes);
                }
                Some(Mutex::new(log))
            }
            None => None,
        };
        let ctx = Arc::new(Ctx {
            stats,
            cache,
            queue: AdmissionQueue::new(cfg.queue_capacity),
            registry,
            log,
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let mut threads = Vec::new();
        for _ in 0..ctx.cfg.workers {
            let ctx = Arc::clone(&ctx);
            threads.push(std::thread::spawn(move || worker_loop(&ctx)));
        }
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let ctx = Arc::clone(&ctx);
            let conn_threads = Arc::clone(&conn_threads);
            threads.push(std::thread::spawn(move || {
                accept_loop(listener, &ctx, &conn_threads);
                // the accept loop exits only at shutdown; readers notice the
                // flag within one poll interval, so these joins terminate
                let handles: Vec<_> = lock_ignore_poison(&conn_threads).drain(..).collect();
                for h in handles {
                    let _ = h.join();
                }
            }));
        }
        Ok(Server {
            ctx,
            threads: Mutex::new(threads),
            addr,
        })
    }

    /// The bound TCP address, if serving TCP.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// A snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.ctx.snapshot()
    }

    /// Stops accepting, drains admitted work, and joins every thread.
    pub fn shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.ctx.queue.close();
        let handles: Vec<_> = lock_ignore_poison(&self.threads).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: Listener, ctx: &Arc<Ctx>, conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    while !ctx.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(stream) => {
                let ctx = Arc::clone(ctx);
                let handle = std::thread::spawn(move || serve_connection(stream, &ctx));
                lock_ignore_poison(conn_threads).push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
}

/// Fills `buf` from the stream, polling the shutdown flag between timed-out
/// reads.  Unlike `read_exact`, a timeout mid-frame keeps the bytes already
/// read, so slow writers cannot desynchronise the stream.
fn read_full(stream: &mut Stream, buf: &mut [u8], ctx: &Ctx) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        if ctx.shutdown.load(Ordering::Relaxed) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "shutting down"));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one frame with the same taxonomy as `wire::read_frame`, but
/// interruptible at shutdown.
fn read_frame_interruptible(stream: &mut Stream, ctx: &Ctx) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 8];
    read_full(stream, &mut header, ctx)?;
    let magic = u32::from_le_bytes(header[..4].try_into().unwrap());
    if magic != crate::wire::MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..].try_into().unwrap()) as usize;
    if len > ctx.cfg.max_frame_bytes {
        return Err(WireError::Oversized {
            declared: len,
            max: ctx.cfg.max_frame_bytes,
        });
    }
    let mut payload = vec![0u8; len];
    read_full(stream, &mut payload, ctx)?;
    Ok(payload)
}

fn serve_connection(stream: Stream, ctx: &Arc<Ctx>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(ConnShared::new(writer));
    let mut reader = stream;
    loop {
        match read_frame_interruptible(&mut reader, ctx) {
            Ok(payload) => match decode_request(&payload) {
                Ok(Request::Ping) => {
                    conn.send(&Response::Pong);
                }
                Ok(Request::Stats) => {
                    conn.send(&Response::Stats(ctx.snapshot()));
                }
                Ok(Request::Check(req)) => admit(Work::Check(req), &conn, ctx),
                Ok(Request::Resume(rr)) => admit(Work::Resume(rr), &conn, ctx),
                Err(e) => {
                    // the frame boundary was sound, so the stream is still
                    // in sync: reject and keep serving this connection
                    ServerStats::bump(&ctx.stats.rejected);
                    conn.send(&Response::Rejected {
                        id: 0,
                        reason: e.to_string(),
                    });
                }
            },
            Err(e @ (WireError::BadMagic(_) | WireError::Oversized { .. })) => {
                // cannot resynchronise after these: reject, then hang up
                ServerStats::bump(&ctx.stats.rejected);
                conn.send(&Response::Rejected {
                    id: 0,
                    reason: e.to_string(),
                });
                break;
            }
            Err(_) => break, // disconnect, transport error, or shutdown
        }
    }
    conn.mark_dead();
    reader.shutdown_both();
}

/// Admission: register the request's cancel token, then enqueue.  A full
/// queue sheds with a typed `Overloaded` carrying the observed depth; an
/// injected admission panic degrades to a typed `Error`.  Nothing is ever
/// buffered outside the bounded queue.
fn admit(work: Work, conn: &Arc<ConnShared>, ctx: &Arc<Ctx>) {
    let id = work.id();
    let priority = match &work {
        Work::Check(req) => req.priority,
        Work::Resume(rr) => rr.priority,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        fault::maybe_fire(fault::SITE_ADMISSION);
        let cancel = CancelToken::new();
        conn.register(id, cancel.clone());
        let entry = JobEntry {
            work,
            conn: Arc::clone(conn),
            admitted_at: Instant::now(),
            cancel,
        };
        // box the shed entry so the closure's Err stays pointer-sized
        ctx.queue.push(entry, priority).map_err(Box::new)
    }));
    match outcome {
        Ok(Ok(())) => ServerStats::bump(&ctx.stats.admitted),
        Ok(Err(_entry)) => {
            conn.unregister(id);
            ServerStats::bump(&ctx.stats.shed);
            let queue_depth = ctx.queue.len() as u64;
            conn.send(&Response::Overloaded {
                id,
                queue_depth,
                capacity: ctx.queue.capacity() as u64,
                retry_after_hint_ms: retry_after_hint_ms(
                    queue_depth,
                    ctx.stats.service_ns_ewma.load(Ordering::Relaxed),
                    ctx.cfg.workers as u64,
                ),
            });
        }
        Err(_) => {
            conn.unregister(id);
            ServerStats::bump(&ctx.stats.errors);
            conn.send(&Response::Error {
                id,
                detail: "admission failed".into(),
            });
        }
    }
}

fn worker_loop(ctx: &Arc<Ctx>) {
    while let Some(entry) = ctx.queue.pop() {
        ctx.stats.active_jobs.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        process(entry, ctx);
        ctx.stats.observe_service(started.elapsed());
        ctx.stats.active_jobs.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The resolved shape of a request: the single-round model and the
/// obligation catalogue to check on it.
struct ResolvedRequest {
    model: SystemModel,
    specs: Vec<Spec>,
    /// Auto-selected sweep for family sources (used when the request names
    /// no valuations).
    family_sweep: Vec<ParamValuation>,
}

fn resolve_source(req: &CheckRequest) -> Result<ResolvedRequest, String> {
    match &req.source {
        Source::Protocol(name) => {
            let protocol = ccprotocols::protocol_by_name(name)
                .ok_or_else(|| format!("unknown protocol {name:?}"))?;
            let model = protocol.single_round();
            let obligations = cccore::obligations_for(&protocol, &model);
            let specs = obligations.all().into_iter().cloned().collect();
            Ok(ResolvedRequest {
                model,
                specs,
                family_sweep: Vec::new(),
            })
        }
        Source::Family { params, seed } => {
            let family = params.instantiate(*seed);
            let specs = Spec::family_catalogue(&family.single_round, &family.obligations);
            Ok(ResolvedRequest {
                model: family.single_round,
                specs,
                family_sweep: family.sweep,
            })
        }
    }
}

fn degraded_verdict(spec: &Spec, detail: &str) -> SpecVerdict {
    SpecVerdict {
        name: spec.name().to_string(),
        code: b'?',
        states: 0,
        transitions: 0,
        cached: false,
        detail: detail.to_string(),
    }
}

fn outcome_verdict(spec: &Spec, outcome: &CheckOutcome, cached: bool) -> SpecVerdict {
    SpecVerdict {
        name: spec.name().to_string(),
        code: verdict_code(outcome.status),
        states: outcome.states_explored as u64,
        transitions: outcome.transitions_explored as u64,
        cached,
        detail: outcome.detail.clone(),
    }
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn process(entry: JobEntry, ctx: &Arc<Ctx>) {
    let JobEntry {
        work,
        conn,
        admitted_at,
        cancel,
    } = entry;
    let id = work.id();
    if cancel.is_cancelled() || !conn.is_alive() {
        conn.unregister(id);
        ServerStats::bump(&ctx.stats.orphaned);
        return;
    }
    match work {
        Work::Check(req) => {
            let run = CheckRun {
                id,
                deadline_ms: req.deadline_ms,
                progress: req.progress,
                park: req.park_on_interrupt,
                req,
                resume: None,
            };
            run_check(run, &conn, admitted_at, &cancel, ctx);
        }
        Work::Resume(rr) => {
            let bytes = match ctx.registry.take(rr.token) {
                Ok(bytes) => bytes,
                Err(cause) => {
                    conn.unregister(id);
                    ServerStats::bump(&ctx.stats.resume_rejected);
                    conn.send(&Response::ResumeRejected { id, cause });
                    return;
                }
            };
            // tokens are one-shot: the consumption is durable even if the
            // continued run fails to produce a verdict
            ctx.log_drop(rr.token);
            let parked = match ParkedJob::decode(&bytes) {
                Ok(parked) => parked,
                Err(e) => {
                    conn.unregister(id);
                    ServerStats::bump(&ctx.stats.errors);
                    conn.send(&Response::Error {
                        id,
                        detail: format!("parked state undecodable: {e}"),
                    });
                    return;
                }
            };
            ServerStats::bump(&ctx.stats.resumed);
            let run = CheckRun {
                id,
                deadline_ms: rr.deadline_ms,
                progress: rr.progress,
                park: rr.park_on_interrupt,
                req: parked.req.clone(),
                resume: Some(ResumeState {
                    cell_index: parked.cell_index,
                    cells_done: parked.cells_done,
                    hit_verdicts: parked.hit_verdicts,
                    miss_indices: parked.miss_indices,
                    ckpt_bytes: parked.ckpt_bytes,
                }),
            };
            run_check(run, &conn, admitted_at, &cancel, ctx);
        }
    }
}

/// One check execution: either a fresh request or the continuation of a
/// parked one.
struct CheckRun {
    /// The originating check request (for a resume: the one embedded in
    /// the parked state — resolution is deterministic, so it rebuilds the
    /// same model, specs and valuations).
    req: CheckRequest,
    /// The id terminal responses echo (a resume answers with *its* id).
    id: u64,
    deadline_ms: u64,
    progress: bool,
    park: bool,
    resume: Option<ResumeState>,
}

/// Where to pick a parked job back up.
struct ResumeState {
    cell_index: usize,
    cells_done: Vec<CellReport>,
    hit_verdicts: Vec<(usize, SpecVerdict)>,
    miss_indices: Vec<usize>,
    ckpt_bytes: Vec<u8>,
}

fn run_check(
    run: CheckRun,
    conn: &Arc<ConnShared>,
    admitted_at: Instant,
    cancel: &CancelToken,
    ctx: &Arc<Ctx>,
) {
    let CheckRun {
        req,
        id,
        deadline_ms,
        progress,
        park,
        mut resume,
    } = run;

    let reject = |reason: String| {
        conn.unregister(id);
        ServerStats::bump(&ctx.stats.rejected);
        conn.send(&Response::Rejected { id, reason });
    };
    let internal_error = |detail: String| {
        conn.unregister(id);
        ServerStats::bump(&ctx.stats.errors);
        conn.send(&Response::Error { id, detail });
    };

    // Resolution (model construction) runs under the same supervision as
    // the job itself: a panic is an internal error, not a daemon crash.
    let resolved = match catch_unwind(AssertUnwindSafe(|| resolve_source(&req))) {
        Ok(Ok(r)) => r,
        Ok(Err(reason)) => return reject(reason),
        Err(payload) => {
            return internal_error(format!(
                "request resolution panicked: {}",
                panic_detail(payload)
            ));
        }
    };
    let specs: Vec<Spec> = if req.obligations.is_empty() {
        resolved.specs
    } else {
        let wanted: Vec<&str> = req.obligations.iter().map(String::as_str).collect();
        let filtered: Vec<Spec> = resolved
            .specs
            .into_iter()
            .filter(|s| wanted.contains(&s.name()))
            .collect();
        if filtered.is_empty() {
            return reject("no matching obligations".into());
        }
        filtered
    };
    let model = resolved.model;

    // Valuations: explicit ones must match the environment and be
    // admissible; an empty list asks the daemon to pick small admissible
    // points itself.
    let valuations: Vec<ParamValuation> = if req.valuations.is_empty() {
        let auto = if resolved.family_sweep.is_empty() {
            VerifierConfig::quick().select_valuations(&model)
        } else {
            resolved.family_sweep
        };
        auto.into_iter().take(ctx.cfg.max_valuations).collect()
    } else {
        if req.valuations.len() > ctx.cfg.max_valuations {
            return reject(format!(
                "too many valuations: {} (max {})",
                req.valuations.len(),
                ctx.cfg.max_valuations
            ));
        }
        let env = model.env();
        let mut out = Vec::with_capacity(req.valuations.len());
        for raw in &req.valuations {
            if raw.len() != env.num_params() {
                return reject(format!(
                    "valuation arity {} does not match the {} environment parameters",
                    raw.len(),
                    env.num_params()
                ));
            }
            let v = ParamValuation::new(raw.clone());
            if !env.is_admissible(&v) {
                return reject(format!("inadmissible valuation {raw:?}"));
            }
            out.push(v);
        }
        out
    };
    if valuations.is_empty() {
        return reject("no admissible valuations".into());
    }

    // Counter systems are built up front so an unbuildable valuation is a
    // rejection, not a mid-grid error.
    let mut systems = Vec::with_capacity(valuations.len());
    for v in &valuations {
        match CounterSystem::new(model.clone(), v.clone()) {
            Ok(sys) => systems.push(sys),
            Err(e) => return reject(format!("cannot build counter system: {e}")),
        }
    }

    // A resumed request must slot cleanly into the catalogue it was parked
    // under; registry bytes are self-produced, but never worth an
    // out-of-bounds panic if a log ever feeds us drifted state.
    if let Some(rs) = &resume {
        let consistent = rs.cell_index < valuations.len()
            && rs.cells_done.len() == rs.cell_index
            && rs.miss_indices.iter().all(|&i| i < specs.len())
            && rs.hit_verdicts.iter().all(|(i, _)| *i < specs.len());
        if !consistent {
            return internal_error("parked state does not match its request".into());
        }
    }

    let deadline_at = (deadline_ms > 0).then(|| admitted_at + Duration::from_millis(deadline_ms));
    let system_fp = system_fingerprint(&model);
    let spec_fps: Vec<u64> = specs.iter().map(spec_fingerprint).collect();

    let start_cell = resume.as_ref().map_or(0, |rs| rs.cell_index);
    let mut cells: Vec<CellReport> = resume
        .as_mut()
        .map(|rs| std::mem::take(&mut rs.cells_done))
        .unwrap_or_default();
    let mut resume_token: Option<ResumeToken> = None;

    for (vi, (valuation, sys)) in valuations.iter().zip(&systems).enumerate().skip(start_cell) {
        let valuation_fp = valuation_fingerprint(valuation);
        let mut verdicts: Vec<Option<SpecVerdict>> = vec![None; specs.len()];
        let mut missing = Vec::new();
        let mut resume_ckpt: Option<JobCheckpoint> = None;

        if resume.as_ref().is_some_and(|rs| rs.cell_index == vi) {
            // the parked cell: replay its pre-job state verbatim — the
            // cache is *not* re-consulted, so the obligation list matches
            // the checkpoint exactly and the reported verdicts cannot
            // shift under a cache that moved on
            let rs = resume.take().unwrap();
            for (slot, v) in rs.hit_verdicts {
                verdicts[slot] = Some(v);
            }
            missing = rs.miss_indices;
            if !rs.ckpt_bytes.is_empty() {
                match JobCheckpoint::from_portable_bytes(&rs.ckpt_bytes) {
                    Ok(cp) => resume_ckpt = Some(cp),
                    Err(e) => {
                        return internal_error(format!("parked checkpoint undecodable: {e}"));
                    }
                }
            }
        } else {
            for (i, spec) in specs.iter().enumerate() {
                match ctx.cache.get(&(system_fp, valuation_fp, spec_fps[i])) {
                    Some(hit) => {
                        verdicts[i] = Some(SpecVerdict {
                            name: spec.name().to_string(),
                            code: verdict_code(hit.status),
                            states: hit.states_explored as u64,
                            transitions: hit.transitions_explored as u64,
                            cached: true,
                            detail: hit.detail,
                        });
                    }
                    None => missing.push(i),
                }
            }
        }

        if !missing.is_empty() {
            // pre-job filled slots, captured for parking: on resume they
            // are replayed verbatim instead of re-consulting the cache
            let prefilled: Vec<(usize, SpecVerdict)> = verdicts
                .iter()
                .enumerate()
                .filter_map(|(i, v)| v.as_ref().map(|v| (i, v.clone())))
                .collect();
            // `Some(detail)` once this cell tripped; the checkpoint bytes
            // to park ride alongside (empty = cell never started)
            let mut tripped: Option<String> = None;
            let mut park_bytes: Option<Vec<u8>> = None;

            let remaining = deadline_at.map(|d| d.saturating_duration_since(Instant::now()));
            if remaining.is_some_and(|r| r.is_zero()) {
                // the deadline already passed: degrade the whole cell to
                // `?` verdicts, exactly like a tripped VerifierConfig budget
                tripped = Some("interrupted: deadline exceeded".into());
                park_bytes = park.then(|| {
                    resume_ckpt
                        .as_ref()
                        .map(JobCheckpoint::to_portable_bytes)
                        .unwrap_or_default()
                });
            } else {
                let miss_specs: Vec<Spec> = missing.iter().map(|&i| specs[i].clone()).collect();
                let mut budget = JobBudget::unlimited();
                if let Some(r) = remaining {
                    budget = budget.with_deadline(r);
                }
                let progress_cb: Option<ProgressFn> = progress.then(|| {
                    let conn = Arc::clone(conn);
                    let cells_done = cells.len() as u64;
                    let last = Mutex::new(Instant::now());
                    Arc::new(move |states: usize, transitions: usize| {
                        let mut last = lock_ignore_poison(&last);
                        if last.elapsed() < PROGRESS_INTERVAL {
                            return;
                        }
                        *last = Instant::now();
                        conn.send(&Response::Progress {
                            id,
                            states: states as u64,
                            transitions: transitions as u64,
                            cells_done,
                        });
                    }) as ProgressFn
                });
                // a panicking attempt consumes the checkpoint with it: the
                // retry re-runs the cell's owed specs from scratch, which
                // is deterministic and therefore still verdict-identical
                let mut ckpt_slot = resume_ckpt.take();
                let ran = run_with_retry(&ctx.cfg.retry, id ^ valuation_fp, |_attempt| {
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut job =
                            CheckJob::new(sys, &miss_specs, ctx.cfg.checker).with_budget(budget);
                        if let Some(cb) = &progress_cb {
                            job = job.with_progress(Arc::clone(cb));
                        }
                        // expose the job's own token for disconnects, then
                        // re-check liveness: `mark_dead` flips `alive`
                        // before cancelling tokens, so this order cannot
                        // miss a disconnect
                        let token = job.cancel_token();
                        conn.register(id, token.clone());
                        if cancel.is_cancelled() || !conn.is_alive() {
                            token.cancel();
                        }
                        match ckpt_slot.take() {
                            Some(cp) => job.resume(cp),
                            None => job.run(),
                        }
                    }))
                    .map_err(panic_detail)
                });
                match ran {
                    Err(detail) => {
                        return internal_error(format!("job panicked on every attempt: {detail}"));
                    }
                    Ok(JobOutcome::Completed { outcomes, .. }) => {
                        for (slot, outcome) in missing.iter().zip(&outcomes) {
                            ctx.record_verdict((system_fp, valuation_fp, spec_fps[*slot]), outcome);
                            verdicts[*slot] = Some(outcome_verdict(&specs[*slot], outcome, false));
                        }
                    }
                    Ok(JobOutcome::Interrupted { .. }) => {
                        // only a disconnect cancels daemon jobs: drop the
                        // response, release the slot
                        conn.unregister(id);
                        ServerStats::bump(&ctx.stats.orphaned);
                        return;
                    }
                    Ok(JobOutcome::BudgetExceeded {
                        reason, checkpoint, ..
                    }) => {
                        tripped = Some(format!("interrupted: {}", reason.describe()));
                        // serialize before `into_outcomes` consumes it: the
                        // portable bytes carry the completed outcomes, so
                        // resume never redoes (or re-caches) them
                        park_bytes = park.then(|| checkpoint.to_portable_bytes());
                        for (slot, outcome) in missing.iter().zip(checkpoint.into_outcomes()) {
                            if let Some(o) = outcome {
                                ctx.record_verdict((system_fp, valuation_fp, spec_fps[*slot]), &o);
                                verdicts[*slot] = Some(outcome_verdict(&specs[*slot], &o, false));
                            }
                        }
                    }
                }
            }

            if let Some(trip_detail) = tripped {
                // park once, at the first tripped cell: its checkpoint
                // covers this cell, and resume recomputes every later one
                if resume_token.is_none() {
                    if let Some(ckpt_bytes) = park_bytes {
                        let parked = ParkedJob {
                            req: req.clone(),
                            cell_index: vi,
                            cells_done: cells.clone(),
                            hit_verdicts: prefilled,
                            miss_indices: missing.clone(),
                            ckpt_bytes,
                        };
                        let bytes = parked.encode();
                        if let Some((token, evicted)) = ctx.registry.park(bytes.clone()) {
                            for old in evicted {
                                ServerStats::bump(&ctx.stats.checkpoints_evicted);
                                ctx.log_drop(old);
                            }
                            // durable before the token is promised
                            if let Some(log) = &ctx.log {
                                if let Err(e) =
                                    lock_ignore_poison(log).append_checkpoint(token, &bytes)
                                {
                                    eprintln!("ccserve: checkpoint log append failed: {e}");
                                }
                            }
                            ServerStats::bump(&ctx.stats.parked);
                            resume_token = Some(ResumeToken {
                                token,
                                expires_in_ms: ctx.registry.ttl_ms(),
                            });
                        }
                    }
                }
                let detail = if resume_token.is_some() {
                    format!("{trip_detail}; resumable")
                } else {
                    trip_detail
                };
                for &i in &missing {
                    if verdicts[i].is_none() {
                        verdicts[i] = Some(degraded_verdict(&specs[i], &detail));
                    }
                }
            }
        }

        cells.push(CellReport {
            valuation: valuation.values().to_vec(),
            verdicts: verdicts.into_iter().map(|v| v.unwrap()).collect(),
        });
    }

    conn.unregister(id);
    if conn.send(&Response::Verdict {
        id,
        cells,
        resume: resume_token,
    }) {
        ServerStats::bump(&ctx.stats.completed);
    } else {
        ServerStats::bump(&ctx.stats.orphaned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hint_is_monotone_in_queue_depth() {
        let mean_ns = 7_500_000; // 7.5 ms mean service time
        let mut prev = 0;
        for depth in 0..512 {
            let hint = retry_after_hint_ms(depth, mean_ns, 4);
            assert!(
                hint >= prev,
                "hint regressed at depth {depth}: {hint} < {prev}"
            );
            prev = hint;
        }
        // and it actually grows across worker-count strides
        assert!(retry_after_hint_ms(64, mean_ns, 4) > retry_after_hint_ms(0, mean_ns, 4));
    }

    #[test]
    fn retry_hint_scales_with_service_time_and_stays_clamped() {
        assert_eq!(retry_after_hint_ms(0, 0, 4), 1, "no sample yet: floor");
        assert!(
            retry_after_hint_ms(16, 40_000_000, 4) > retry_after_hint_ms(16, 4_000_000, 4),
            "slower service means a longer hint"
        );
        assert_eq!(
            retry_after_hint_ms(u64::MAX / 2, 1_000_000_000, 1),
            60_000,
            "ceiling"
        );
        // zero workers must not divide by zero
        assert!(retry_after_hint_ms(8, 1_000_000, 0) >= 1);
    }

    #[test]
    fn service_ewma_tracks_samples() {
        let stats = ServerStats::default();
        assert_eq!(stats.service_ns_ewma.load(Ordering::Relaxed), 0);
        stats.observe_service(Duration::from_millis(8));
        let first = stats.service_ns_ewma.load(Ordering::Relaxed);
        assert_eq!(first, 8_000_000, "first sample seeds the mean");
        for _ in 0..64 {
            stats.observe_service(Duration::from_millis(16));
        }
        let settled = stats.service_ns_ewma.load(Ordering::Relaxed);
        assert!(
            settled > 15_000_000 && settled < 17_000_000,
            "mean converged towards the new regime, got {settled}"
        );
    }
}
