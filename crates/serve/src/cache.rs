//! Cross-request result cache.
//!
//! Sits *above* the checker's in-process graph cache: where the graph cache
//! shares reachability graphs between obligations of one job, this cache
//! shares final verdicts between *requests* — two clients asking for the
//! same (system, valuation, obligation) triple pay for one exploration.
//! Keys are the stable FNV-64 fingerprints of `cccore::fingerprint`, so a
//! by-name protocol and a structurally identical generated family hit the
//! same line.
//!
//! Only definite verdicts (`Holds` / `Violated`) are cached: an `Unknown`
//! produced by a deadline trip reflects the requester's budget, not the
//! system, and must not poison later requests with laxer deadlines.
//! Eviction is FIFO by insertion order, bounded by `capacity`.

use ccchecker::{CheckOutcome, CheckStatus};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: (system fingerprint, valuation fingerprint, obligation
/// fingerprint).
pub type CacheKey = (u64, u64, u64);

/// A cached definite verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedVerdict {
    /// The verdict (`Holds` or `Violated`, never `Unknown`).
    pub status: CheckStatus,
    /// States explored by the original run.
    pub states_explored: usize,
    /// Transitions explored by the original run.
    pub transitions_explored: usize,
    /// Detail string of the original outcome.
    pub detail: String,
}

struct CacheInner {
    map: HashMap<CacheKey, CachedVerdict>,
    order: VecDeque<CacheKey>,
}

/// A bounded, thread-safe verdict cache.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` verdicts (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a verdict, counting the hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<CachedVerdict> {
        let inner = self.inner.lock().unwrap();
        match inner.map.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Caches the outcome if it is definite; `Unknown` outcomes (degraded,
    /// interrupted, or genuinely inconclusive) are dropped.
    pub fn insert(&self, key: CacheKey, outcome: &CheckOutcome) {
        if self.capacity == 0 || outcome.status == CheckStatus::Unknown {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        match inner.map.entry(key) {
            Entry::Occupied(_) => return,
            Entry::Vacant(slot) => {
                slot.insert(CachedVerdict {
                    status: outcome.status,
                    states_explored: outcome.states_explored,
                    transitions_explored: outcome.transitions_explored,
                    detail: outcome.detail.clone(),
                });
            }
        }
        inner.order.push_back(key);
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
            }
        }
    }

    /// Seeds the cache with an already-validated verdict (log recovery):
    /// same occupancy and capacity rules as [`ResultCache::insert`], but no
    /// definiteness re-check and no hit/miss accounting.
    pub fn preload(&self, key: CacheKey, verdict: CachedVerdict) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        match inner.map.entry(key) {
            Entry::Occupied(_) => return,
            Entry::Vacant(slot) => {
                slot.insert(verdict);
            }
        }
        inner.order.push_back(key);
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
            }
        }
    }

    /// A snapshot of every cached entry in eviction (insertion) order — the
    /// verdict half of a log compaction snapshot.
    pub fn entries(&self) -> Vec<(CacheKey, CachedVerdict)> {
        let inner = self.inner.lock().unwrap();
        inner
            .order
            .iter()
            .filter_map(|k| inner.map.get(k).map(|v| (*k, v.clone())))
            .collect()
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a verdict.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit fraction over all lookups (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn holds() -> CheckOutcome {
        CheckOutcome::holds(10, 20)
    }

    #[test]
    fn caches_definite_verdicts_and_counts_hits() {
        let cache = ResultCache::new(8);
        let key = (1, 2, 3);
        assert!(cache.get(&key).is_none());
        cache.insert(key, &holds());
        let hit = cache.get(&key).unwrap();
        assert_eq!(hit.status, CheckStatus::Holds);
        assert_eq!(hit.states_explored, 10);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unknown_outcomes_are_never_cached() {
        let cache = ResultCache::new(8);
        let key = (4, 5, 6);
        cache.insert(
            key,
            &CheckOutcome::unknown(0, 0, "interrupted: deadline exceeded"),
        );
        assert!(cache.get(&key).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = ResultCache::new(2);
        cache.insert((1, 1, 1), &holds());
        cache.insert((2, 2, 2), &holds());
        cache.insert((3, 3, 3), &holds());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&(1, 1, 1)).is_none(), "oldest entry evicted");
        assert!(cache.get(&(2, 2, 2)).is_some());
        assert!(cache.get(&(3, 3, 3)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert((1, 1, 1), &holds());
        assert!(cache.get(&(1, 1, 1)).is_none());
    }
}
