//! The `ccserve` binary: bind, serve, report.
//!
//! ```text
//! ccserve [--tcp ADDR] [--unix PATH] [--workers N] [--queue N]
//!         [--cache N] [--max-frame BYTES] [--stats-interval SECS]
//!         [--cache-log PATH] [--fsync-policy POLICY]
//!         [--checkpoint-slots N] [--port-file PATH]
//! ```
//!
//! Defaults to TCP on `127.0.0.1:7177`.  Knobs left unset fall through to
//! the `CC_SERVE_*` environment variables and then the built-in defaults
//! (see the crate docs).  `--cache-log` makes verdicts and parked
//! checkpoints durable across restarts; `--fsync-policy` is one of
//! `always`, `never`, `every=N`, `interval=MS`.  `--port-file` writes the
//! bound address to a file once listening, so harnesses can use an
//! ephemeral port (`--tcp 127.0.0.1:0`).  The crash campaign arms fault
//! sites via `CC_FAULT_CRASH` (see `ccchecker::fault`).

use ccserve::server::{ServeConfig, Server};
use ccserve::store::FsyncPolicy;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: ccserve [--tcp ADDR] [--unix PATH] [--workers N] [--queue N] \
         [--cache N] [--max-frame BYTES] [--stats-interval SECS] \
         [--cache-log PATH] [--fsync-policy always|never|every=N|interval=MS] \
         [--checkpoint-slots N] [--port-file PATH]"
    );
    std::process::exit(2);
}

fn main() {
    // arm before anything else so even startup paths (log open, replay)
    // are under the campaign's thumb
    ccchecker::fault::arm_from_env();

    let mut tcp: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut config = ServeConfig::default();
    let mut stats_interval = 30u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--tcp" => tcp = Some(value("--tcp")),
            "--unix" => unix = Some(value("--unix")),
            "--workers" => config.workers = parse(&value("--workers")),
            "--queue" => config.queue_capacity = parse(&value("--queue")),
            "--cache" => config.cache_capacity = Some(parse(&value("--cache"))),
            "--max-frame" => config.max_frame_bytes = parse(&value("--max-frame")),
            "--stats-interval" => stats_interval = parse(&value("--stats-interval")),
            "--cache-log" => {
                config.cache_log = Some(std::path::PathBuf::from(value("--cache-log")));
            }
            "--fsync-policy" => {
                let raw = value("--fsync-policy");
                config.fsync_policy = FsyncPolicy::parse(&raw).unwrap_or_else(|| {
                    eprintln!("--fsync-policy: unrecognised policy {raw:?}");
                    usage()
                });
            }
            "--checkpoint-slots" => {
                config.checkpoint_slots = Some(parse(&value("--checkpoint-slots")));
            }
            "--port-file" => port_file = Some(value("--port-file")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }

    let server = if let Some(path) = unix {
        #[cfg(unix)]
        {
            let path = std::path::PathBuf::from(path);
            let _ = std::fs::remove_file(&path);
            match Server::bind_unix(&path, config) {
                Ok(s) => {
                    eprintln!("ccserve: listening on unix socket {}", path.display());
                    s
                }
                Err(e) => {
                    eprintln!("ccserve: cannot bind {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            eprintln!("ccserve: unix sockets are not supported on this platform");
            std::process::exit(1);
        }
    } else {
        let addr = tcp.unwrap_or_else(|| "127.0.0.1:7177".to_string());
        match Server::bind_tcp(&addr, config) {
            Ok(s) => {
                eprintln!(
                    "ccserve: listening on {}",
                    s.local_addr().map(|a| a.to_string()).unwrap_or(addr)
                );
                s
            }
            Err(e) => {
                eprintln!("ccserve: cannot bind {addr}: {e}");
                std::process::exit(1);
            }
        }
    };

    if let Some(path) = port_file {
        // the harness polls for this file: write the bound address (the
        // real port when `--tcp 127.0.0.1:0` was asked) atomically so a
        // reader never sees a half-written line
        let addr = server
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default();
        let tmp = format!("{path}.tmp");
        let write = std::fs::write(&tmp, addr).and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = write {
            eprintln!("ccserve: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }

    loop {
        std::thread::sleep(Duration::from_secs(stats_interval.max(1)));
        let s = server.stats();
        eprintln!(
            "ccserve: admitted={} shed={} completed={} orphaned={} rejected={} errors={} \
             cache_hits={} cache_misses={} active={} queued={}",
            s.admitted,
            s.shed,
            s.completed,
            s.orphaned,
            s.rejected,
            s.errors,
            s.cache_hits,
            s.cache_misses,
            s.active_jobs,
            s.queue_depth
        );
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {s:?}");
        usage()
    })
}
