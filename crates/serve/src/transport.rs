//! Socket transport: TCP everywhere, Unix-domain sockets where available.
//!
//! The daemon speaks the same framed protocol over both; this module hides
//! the enum dispatch so the server and client code are transport-agnostic.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// A bound, accepting socket.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds a TCP listener (use port 0 for an ephemeral port).
    pub fn bind_tcp(addr: &str) -> io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a Unix-domain listener.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path) -> io::Result<Listener> {
        Ok(Listener::Unix(UnixListener::bind(path)?))
    }

    /// The local TCP address, if this is a TCP listener.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        }
    }

    /// Switches the listener to non-blocking accepts (the accept loop polls
    /// so it can observe shutdown).
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // frames are small and latency-sensitive; Nagle's algorithm
                // interacting with delayed ACKs would add tens of ms per
                // round trip
                let _ = s.set_nodelay(true);
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

/// A connected stream.
pub enum Stream {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connects over TCP.
    pub fn connect_tcp(addr: SocketAddr) -> io::Result<Stream> {
        let s = TcpStream::connect(addr)?;
        // see `Listener::accept`: small frames, Nagle off
        let _ = s.set_nodelay(true);
        Ok(Stream::Tcp(s))
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> io::Result<Stream> {
        Ok(Stream::Unix(UnixStream::connect(path)?))
    }

    /// An independent handle onto the same socket (separate read/write
    /// sides).
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
        }
    }

    /// Bounds blocking reads so the reader can poll for shutdown.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Closes both directions.
    pub fn shutdown_both(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}
