//! Parked-checkpoint registry: a bounded LRU of resumable jobs.
//!
//! When a deadline trips a job whose request set `park_on_interrupt`, the
//! server serialises the job's portable state (the original request, the
//! cells already reported, the tripped cell's cache hits, and the
//! checker's portable [`ccchecker::JobCheckpoint`] bytes) into a
//! [`ParkedJob`] and parks it here under a fresh resume token.  A follow-up
//! [`crate::wire::ResumeRequest`] takes the entry back out and continues
//! bit-identically.
//!
//! The registry is bounded two ways: by **slots** (LRU eviction, oldest
//! parked job first) and by **time** (a TTL per entry, checked lazily).
//! Both failure modes are *typed*: a resume for an evicted token is
//! rejected `Evicted` (the registry remembers recently evicted tokens), an
//! outlived one `Expired`, and anything else `Unknown` — the client can
//! always distinguish "retry from scratch" from "you waited too long".
//!
//! Entries are stored as encoded bytes, not live checkpoints: a
//! `JobCheckpoint` holds `Rc`-shared graphs and is not `Send`, while the
//! portable encoding drops the graphs (resume rebuilds them
//! deterministically) and makes resident accounting exact.

use crate::wire::{
    decode_request, encode_request, put_cell, put_u64, put_u8, put_verdict, read_cell,
    read_verdict, CellReport, CheckRequest, Cursor, Request, ResumeRejectCause, SpecVerdict,
    WireError,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const PARKED_VERSION: u8 = 1;
/// Recently evicted tokens remembered for typed `Evicted` rejections.
const EVICTED_MEMORY: usize = 64;

/// The portable state of one parked job, sufficient to rebuild the model,
/// re-filter the obligations and continue the tripped cell bit-identically.
pub(crate) struct ParkedJob {
    /// The original check request (resolution is deterministic, so the
    /// model, specs and valuations are rebuilt from it on resume).
    pub req: CheckRequest,
    /// Index of the valuation cell the deadline tripped in.
    pub cell_index: usize,
    /// Cells fully reported before the trip, kept verbatim.
    pub cells_done: Vec<CellReport>,
    /// Tripped-cell verdict slots that were served from the cache *before*
    /// the job ran, captured verbatim — resume never re-consults the cache
    /// for the tripped cell, so the checkpoint's obligation list always
    /// matches and the reported verdicts cannot shift.
    pub hit_verdicts: Vec<(usize, SpecVerdict)>,
    /// Spec indices (into the filtered catalogue) the job was running over.
    pub miss_indices: Vec<usize>,
    /// `JobCheckpoint::to_portable_bytes()` at the trip, or empty if the
    /// deadline passed before the cell's job even started.
    pub ckpt_bytes: Vec<u8>,
}

impl ParkedJob {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u8(&mut buf, PARKED_VERSION);
        let req = encode_request(&Request::Check(self.req.clone()));
        put_u64(&mut buf, req.len() as u64);
        buf.extend_from_slice(&req);
        put_u64(&mut buf, self.cell_index as u64);
        put_u64(&mut buf, self.cells_done.len() as u64);
        for cell in &self.cells_done {
            put_cell(&mut buf, cell);
        }
        put_u64(&mut buf, self.hit_verdicts.len() as u64);
        for (slot, v) in &self.hit_verdicts {
            put_u64(&mut buf, *slot as u64);
            put_verdict(&mut buf, v);
        }
        put_u64(&mut buf, self.miss_indices.len() as u64);
        for i in &self.miss_indices {
            put_u64(&mut buf, *i as u64);
        }
        put_u64(&mut buf, self.ckpt_bytes.len() as u64);
        buf.extend_from_slice(&self.ckpt_bytes);
        buf
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<ParkedJob, WireError> {
        let mut c = Cursor::new(bytes);
        if c.u8()? != PARKED_VERSION {
            return Err(WireError::Malformed("unknown parked-job version".into()));
        }
        let req_len = c.len(1)?;
        let req_bytes = c.bytes(req_len)?.to_vec();
        let Request::Check(req) = decode_request(&req_bytes)? else {
            return Err(WireError::Malformed(
                "parked job does not embed a check request".into(),
            ));
        };
        let cell_index = c.u64()? as usize;
        let n_cells = c.len(1)?;
        let mut cells_done = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            cells_done.push(read_cell(&mut c)?);
        }
        let n_hits = c.len(8)?;
        let mut hit_verdicts = Vec::with_capacity(n_hits);
        for _ in 0..n_hits {
            let slot = c.u64()? as usize;
            hit_verdicts.push((slot, read_verdict(&mut c)?));
        }
        let n_miss = c.len(8)?;
        let mut miss_indices = Vec::with_capacity(n_miss);
        for _ in 0..n_miss {
            miss_indices.push(c.u64()? as usize);
        }
        let ckpt_len = c.len(1)?;
        let ckpt_bytes = c.bytes(ckpt_len)?.to_vec();
        c.finish()?;
        Ok(ParkedJob {
            req,
            cell_index,
            cells_done,
            hit_verdicts,
            miss_indices,
            ckpt_bytes,
        })
    }
}

struct Entry {
    bytes: Vec<u8>,
    expires_at: Instant,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    /// Park order, oldest first (entries are taken exactly once, so park
    /// order *is* LRU order).
    order: VecDeque<u64>,
    /// Ring of recently evicted tokens, for typed rejections.
    evicted: VecDeque<u64>,
    next_token: u64,
    resident_bytes: usize,
}

/// A bounded, thread-safe registry of parked jobs keyed by resume token.
pub(crate) struct CheckpointRegistry {
    inner: Mutex<Inner>,
    capacity: usize,
    ttl: Duration,
}

impl CheckpointRegistry {
    /// A registry holding at most `capacity` parked jobs, each for at most
    /// `ttl` (0 slots disables parking entirely).
    pub(crate) fn new(capacity: usize, ttl: Duration) -> Self {
        CheckpointRegistry {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                order: VecDeque::new(),
                evicted: VecDeque::new(),
                next_token: 1,
                resident_bytes: 0,
            }),
            capacity,
            ttl,
        }
    }

    /// The per-entry time-to-live in milliseconds (for `ResumeToken`).
    pub(crate) fn ttl_ms(&self) -> u64 {
        self.ttl.as_millis().min(u64::MAX as u128) as u64
    }

    /// Parks encoded job state, returning the fresh token and any tokens
    /// evicted to make room.  `None` if parking is disabled.
    pub(crate) fn park(&self, bytes: Vec<u8>) -> Option<(u64, Vec<u64>)> {
        if self.capacity == 0 {
            return None;
        }
        let now = Instant::now();
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        // drop outlived entries first so they never displace live ones
        // (their tokens reject as Expired, not Evicted)
        let expired: Vec<u64> = inner
            .entries
            .iter()
            .filter(|(_, e)| e.expires_at <= now)
            .map(|(t, _)| *t)
            .collect();
        for t in expired {
            if let Some(e) = inner.entries.remove(&t) {
                inner.resident_bytes -= e.bytes.len();
            }
            inner.order.retain(|&o| o != t);
        }
        let mut evicted = Vec::new();
        while inner.entries.len() >= self.capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            if let Some(e) = inner.entries.remove(&victim) {
                inner.resident_bytes -= e.bytes.len();
                evicted.push(victim);
                inner.evicted.push_back(victim);
                while inner.evicted.len() > EVICTED_MEMORY {
                    inner.evicted.pop_front();
                }
            }
        }
        let token = inner.next_token;
        inner.next_token += 1;
        inner.resident_bytes += bytes.len();
        inner.entries.insert(
            token,
            Entry {
                bytes,
                expires_at: now + self.ttl,
            },
        );
        inner.order.push_back(token);
        Some((token, evicted))
    }

    /// Takes a parked job out of the registry.  Every failure is typed:
    /// `Evicted` for tokens displaced by LRU pressure, `Expired` for
    /// outlived ones, `Unknown` otherwise.
    pub(crate) fn take(&self, token: u64) -> Result<Vec<u8>, ResumeRejectCause> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match inner.entries.remove(&token) {
            Some(e) => {
                inner.resident_bytes -= e.bytes.len();
                inner.order.retain(|&o| o != token);
                if e.expires_at <= Instant::now() {
                    return Err(ResumeRejectCause::Expired);
                }
                Ok(e.bytes)
            }
            None if inner.evicted.contains(&token) => Err(ResumeRejectCause::Evicted),
            None => Err(ResumeRejectCause::Unknown),
        }
    }

    /// Re-registers a checkpoint recovered from the verdict log at startup,
    /// with a fresh TTL.  Keeps token allocation collision-free across
    /// restarts by bumping the counter past every recovered token.
    pub(crate) fn recover(&self, token: u64, bytes: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.next_token = inner.next_token.max(token + 1);
        if inner.entries.len() >= self.capacity || inner.entries.contains_key(&token) {
            return;
        }
        inner.resident_bytes += bytes.len();
        inner.entries.insert(
            token,
            Entry {
                bytes,
                expires_at: Instant::now() + self.ttl,
            },
        );
        inner.order.push_back(token);
    }

    /// The live parked set (token, encoded bytes), token-sorted — the
    /// checkpoint half of a log compaction snapshot.
    pub(crate) fn snapshot(&self) -> Vec<(u64, Vec<u8>)> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let now = Instant::now();
        let mut out: Vec<(u64, Vec<u8>)> = inner
            .entries
            .iter()
            .filter(|(_, e)| e.expires_at > now)
            .map(|(t, e)| (*t, e.bytes.clone()))
            .collect();
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// Parked entries currently resident.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entries
            .len()
    }

    /// Bytes held by resident entries (exact: entries are encoded).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn resident_bytes(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .resident_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Priority, Source};
    use ccprotocols::family::FamilyParams;

    fn sample_req() -> CheckRequest {
        CheckRequest {
            id: 7,
            priority: Priority::Normal,
            deadline_ms: 40,
            source: Source::Family {
                params: FamilyParams::default(),
                seed: 3,
            },
            valuations: vec![vec![4, 1, 1]],
            obligations: vec!["Inv1(0)".into()],
            progress: false,
            park_on_interrupt: true,
        }
    }

    #[test]
    fn parked_job_round_trips() {
        let job = ParkedJob {
            req: sample_req(),
            cell_index: 2,
            cells_done: vec![CellReport {
                valuation: vec![4, 1, 1],
                verdicts: vec![SpecVerdict {
                    name: "Inv1(0)".into(),
                    code: b'+',
                    states: 11,
                    transitions: 22,
                    cached: true,
                    detail: String::new(),
                }],
            }],
            hit_verdicts: vec![(
                1,
                SpecVerdict {
                    name: "Inv2(0)".into(),
                    code: b'-',
                    states: 5,
                    transitions: 9,
                    cached: true,
                    detail: "cex".into(),
                },
            )],
            miss_indices: vec![0, 2],
            ckpt_bytes: vec![9, 8, 7],
        };
        let decoded = ParkedJob::decode(&job.encode()).unwrap();
        assert_eq!(decoded.req, job.req);
        assert_eq!(decoded.cell_index, 2);
        assert_eq!(decoded.cells_done, job.cells_done);
        assert_eq!(decoded.hit_verdicts, job.hit_verdicts);
        assert_eq!(decoded.miss_indices, vec![0, 2]);
        assert_eq!(decoded.ckpt_bytes, vec![9, 8, 7]);
        // every truncation is a typed error, never a panic
        let bytes = job.encode();
        for cut in 0..bytes.len() {
            assert!(ParkedJob::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn lru_eviction_is_oldest_first_and_typed() {
        let reg = CheckpointRegistry::new(2, Duration::from_secs(60));
        let (t1, ev) = reg.park(vec![1; 10]).unwrap();
        assert!(ev.is_empty());
        let (t2, ev) = reg.park(vec![2; 10]).unwrap();
        assert!(ev.is_empty());
        let (t3, ev) = reg.park(vec![3; 10]).unwrap();
        assert_eq!(ev, vec![t1], "oldest parked job is evicted first");
        assert_eq!(reg.take(t1).unwrap_err(), ResumeRejectCause::Evicted);
        assert_eq!(reg.take(t2).unwrap(), vec![2; 10]);
        assert_eq!(reg.take(t3).unwrap(), vec![3; 10]);
        // a token that never existed is Unknown, not Evicted
        assert_eq!(reg.take(999).unwrap_err(), ResumeRejectCause::Unknown);
        // a taken token does not linger
        assert_eq!(reg.take(t2).unwrap_err(), ResumeRejectCause::Unknown);
    }

    #[test]
    fn expired_entries_reject_typed() {
        let reg = CheckpointRegistry::new(4, Duration::ZERO);
        let (t, _) = reg.park(vec![1, 2, 3]).unwrap();
        assert_eq!(reg.take(t).unwrap_err(), ResumeRejectCause::Expired);
        assert_eq!(reg.resident_bytes(), 0, "expired entry released its bytes");
    }

    #[test]
    fn eviction_releases_resident_bytes() {
        let reg = CheckpointRegistry::new(1, Duration::from_secs(60));
        let mut high_water = 0;
        for i in 0..32 {
            reg.park(vec![i as u8; 1000]).unwrap();
            high_water = high_water.max(reg.resident_bytes());
        }
        assert_eq!(
            high_water, 1000,
            "resident bytes never exceed one slot's worth"
        );
        assert_eq!(reg.len(), 1);
        let (t, _) = reg.park(vec![0; 500]).unwrap();
        reg.take(t).unwrap();
        // take() drained the newest; the previous one was evicted by its park
        assert_eq!(reg.len(), 0);
        assert_eq!(reg.resident_bytes(), 0, "no growth after eviction + take");
    }

    #[test]
    fn recover_bumps_token_allocation_past_recovered_tokens() {
        let reg = CheckpointRegistry::new(4, Duration::from_secs(60));
        reg.recover(17, vec![1]);
        assert_eq!(reg.take(17).unwrap(), vec![1]);
        let (t, _) = reg.park(vec![2]).unwrap();
        assert!(t > 17, "fresh tokens never collide with recovered ones");
    }

    #[test]
    fn zero_capacity_disables_parking() {
        let reg = CheckpointRegistry::new(0, Duration::from_secs(60));
        assert!(reg.park(vec![1]).is_none());
        reg.recover(3, vec![1]);
        assert_eq!(reg.len(), 0);
    }
}
