//! The daemon's length-prefixed binary wire protocol.
//!
//! Frames are `[magic u32][length u32][payload]`, all integers
//! little-endian.  The magic pins the protocol (a client speaking anything
//! else is rejected on its first frame) and the length is bounded by the
//! server's `max_frame_bytes`, so a malicious or broken peer can neither
//! desynchronise the stream nor force an unbounded allocation.  Payloads
//! are encoded with fixed-width integers and length-prefixed strings — no
//! self-describing envelope, no external serialisation dependency.
//!
//! Decoding is total: every parse failure maps to a typed [`WireError`],
//! never a panic, so the robustness suite can throw arbitrary bytes at the
//! daemon.

use ccprotocols::family::{FamilyParams, FaultModel};
use std::io::{self, Read, Write};

/// Frame magic: `"ccRV"` little-endian.
pub const MAGIC: u32 = 0x5652_6363;

/// Default upper bound on a frame payload.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Request tags.
pub const REQ_CHECK: u8 = 1;
/// Stats snapshot request.
pub const REQ_STATS: u8 = 2;
/// Liveness probe.
pub const REQ_PING: u8 = 3;
/// Continue a parked job from a resume token.
pub const REQ_RESUME: u8 = 4;

/// Response tags.
pub const RESP_VERDICT: u8 = 1;
/// Typed shed: the admission queue was full.
pub const RESP_OVERLOADED: u8 = 2;
/// Typed rejection: the request was understood but not serviceable.
pub const RESP_REJECTED: u8 = 3;
/// Internal error while servicing an admitted request.
pub const RESP_ERROR: u8 = 4;
/// Stats snapshot.
pub const RESP_STATS: u8 = 5;
/// Liveness reply.
pub const RESP_PONG: u8 = 6;
/// Non-terminal streaming progress frame (opt-in per request).
pub const RESP_PROGRESS: u8 = 7;
/// Typed rejection of a resume token (unknown / evicted / expired).
pub const RESP_RESUME_REJECTED: u8 = 8;

/// Errors raised while reading or decoding wire data.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed or closed.
    Io(io::Error),
    /// The frame header did not carry the protocol magic.
    BadMagic(u32),
    /// The frame declared a payload larger than the configured bound.
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// The configured bound.
        max: usize,
    },
    /// The payload bytes did not decode as the expected message.
    Malformed(String),
}

impl WireError {
    /// Whether the error is a clean end-of-stream (peer disconnected
    /// between frames).
    pub fn is_disconnect(&self) -> bool {
        matches!(self, WireError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::Oversized { declared, max } => {
                write!(f, "oversized payload: {declared} bytes (max {max})")
            }
            WireError::Malformed(detail) => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload, enforcing the magic and the size bound.
///
/// On [`WireError::Oversized`] the declared bytes have *not* been consumed;
/// the caller must treat the stream as unsynchronised and close it.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..].try_into().unwrap()) as usize;
    if len > max {
        return Err(WireError::Oversized { declared: len, max });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Admission priority band of a check request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Served before everything else.
    High,
    /// The default band.
    Normal,
    /// Served only when the higher bands are empty.
    Low,
}

impl Priority {
    /// Band index (also the wire byte).
    pub fn band(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Decodes the wire byte.
    pub fn from_byte(b: u8) -> Option<Priority> {
        match b {
            0 => Some(Priority::High),
            1 => Some(Priority::Normal),
            2 => Some(Priority::Low),
            _ => None,
        }
    }
}

/// What system a check request asks about.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// A Table II benchmark protocol, by name.
    Protocol(String),
    /// A generated family: parameter point plus instantiation seed.
    Family {
        /// The family parameter point.
        params: FamilyParams,
        /// The instantiation seed.
        seed: u64,
    },
}

/// One verification request.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRequest {
    /// Client-chosen correlation id, echoed on every terminal response.
    pub id: u64,
    /// Admission priority band.
    pub priority: Priority,
    /// Wall-clock deadline in milliseconds from admission; `0` means no
    /// deadline.  Cells past the deadline degrade to `?` verdicts.
    pub deadline_ms: u64,
    /// The system under check.
    pub source: Source,
    /// Explicit parameter valuations (in environment parameter order).
    /// Empty means the daemon selects small admissible valuations itself.
    pub valuations: Vec<Vec<u64>>,
    /// Obligation-name filter; empty means the full catalogue.
    pub obligations: Vec<String>,
    /// Opt in to non-terminal [`Response::Progress`] frames at wave
    /// boundaries before the terminal response.
    pub progress: bool,
    /// When the deadline trips this request, park the job's checkpoint and
    /// return a [`ResumeToken`] alongside the degraded verdicts.
    pub park_on_interrupt: bool,
}

/// A follow-up request continuing a parked job from its resume token.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeRequest {
    /// Client-chosen correlation id for *this* request (independent of the
    /// parked job's original id).
    pub id: u64,
    /// The token handed out in the degraded response's [`ResumeToken`].
    pub token: u64,
    /// Admission priority band.
    pub priority: Priority,
    /// Fresh wall-clock deadline in milliseconds from admission; `0` means
    /// no deadline.
    pub deadline_ms: u64,
    /// Opt in to non-terminal progress frames.
    pub progress: bool,
    /// Park again if the fresh deadline also trips.
    pub park_on_interrupt: bool,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a verification job.
    Check(CheckRequest),
    /// Continue a parked job.
    Resume(ResumeRequest),
    /// Snapshot the server counters.
    Stats,
    /// Liveness probe.
    Ping,
}

/// One obligation's verdict within a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecVerdict {
    /// Obligation name.
    pub name: String,
    /// Verdict glyph: `+` holds, `-` violated, `?` unknown/degraded (see
    /// `cccore::fingerprint::verdict_code`).
    pub code: u8,
    /// States explored (0 for cache hits).
    pub states: u64,
    /// Transitions explored (0 for cache hits).
    pub transitions: u64,
    /// Whether the verdict came from the cross-request result cache.
    pub cached: bool,
    /// Detail string (e.g. `"interrupted: deadline exceeded"`).
    pub detail: String,
}

/// All verdicts for one parameter valuation.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The valuation (environment parameter order).
    pub valuation: Vec<u64>,
    /// Per-obligation verdicts, in catalogue order.
    pub verdicts: Vec<SpecVerdict>,
}

/// A resume token attached to a degraded verdict: presenting it in a
/// [`ResumeRequest`] continues the parked job from its checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeToken {
    /// The opaque token value.
    pub token: u64,
    /// How long the daemon intends to keep the parked checkpoint (LRU
    /// eviction can shorten this; it is a hint, not a lease).
    pub expires_in_ms: u64,
}

/// Why a resume token was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeRejectCause {
    /// The daemon has no record of the token (never issued, or issued by a
    /// previous incarnation whose checkpoint did not survive).
    Unknown,
    /// The token was issued but its checkpoint was evicted from the bounded
    /// registry under pressure.
    Evicted,
    /// The token was issued but outlived its retention window.
    Expired,
}

impl ResumeRejectCause {
    /// The wire byte.
    pub fn byte(self) -> u8 {
        match self {
            ResumeRejectCause::Unknown => 0,
            ResumeRejectCause::Evicted => 1,
            ResumeRejectCause::Expired => 2,
        }
    }

    /// Decodes the wire byte.
    pub fn from_byte(b: u8) -> Option<ResumeRejectCause> {
        match b {
            0 => Some(ResumeRejectCause::Unknown),
            1 => Some(ResumeRejectCause::Evicted),
            2 => Some(ResumeRejectCause::Expired),
            _ => None,
        }
    }
}

impl std::fmt::Display for ResumeRejectCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ResumeRejectCause::Unknown => "unknown token",
            ResumeRejectCause::Evicted => "checkpoint evicted",
            ResumeRejectCause::Expired => "token expired",
        })
    }
}

/// Counter snapshot of a running server.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests shed with [`RESP_OVERLOADED`].
    pub shed: u64,
    /// Requests answered with a verdict.
    pub completed: u64,
    /// Admitted requests whose client vanished before the verdict.
    pub orphaned: u64,
    /// Requests answered with [`RESP_REJECTED`].
    pub rejected: u64,
    /// Requests answered with [`RESP_ERROR`].
    pub errors: u64,
    /// Cross-request result-cache hits.
    pub cache_hits: u64,
    /// Cross-request result-cache misses.
    pub cache_misses: u64,
    /// Jobs currently holding a worker slot.
    pub active_jobs: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Checkpoints parked with a resume token handed out.
    pub parked: u64,
    /// Parked jobs successfully continued from a resume token.
    pub resumed: u64,
    /// Resume requests rejected (unknown, evicted or expired token).
    pub resume_rejected: u64,
    /// Parked checkpoints evicted from the bounded registry.
    pub checkpoints_evicted: u64,
    /// Records recovered from the durable verdict log at startup (0 when
    /// the daemon runs without a log).
    pub log_recovered: u64,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Terminal: the verdict grid for an admitted, completed request.
    Verdict {
        /// Echo of the request id.
        id: u64,
        /// One report per valuation.
        cells: Vec<CellReport>,
        /// Present when the deadline tripped, the request opted into
        /// parking, and the checkpoint was parked: degraded `?` slots can
        /// be continued via [`Request::Resume`].
        resume: Option<ResumeToken>,
    },
    /// Terminal: the admission queue was full; nothing was buffered.
    Overloaded {
        /// Echo of the request id.
        id: u64,
        /// Queue depth observed at the shed decision.
        queue_depth: u64,
        /// Configured queue capacity.
        capacity: u64,
        /// Suggested client back-off: queue depth times the recent mean
        /// service time, divided over the worker slots.  Monotone in the
        /// observed queue depth.
        retry_after_hint_ms: u64,
    },
    /// Terminal: the request cannot be serviced (unknown protocol,
    /// inadmissible valuation, malformed payload, ...).
    Rejected {
        /// Echo of the request id (0 when the id could not be decoded).
        id: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Terminal: the daemon failed internally while servicing the request.
    Error {
        /// Echo of the request id.
        id: u64,
        /// Failure detail.
        detail: String,
    },
    /// Terminal: the presented resume token cannot be honoured.
    ResumeRejected {
        /// Echo of the resume request id.
        id: u64,
        /// Why the token was rejected.
        cause: ResumeRejectCause,
    },
    /// Non-terminal: streaming progress at a wave boundary, sent only when
    /// the request opted in.  Zero or more of these precede the terminal
    /// response of the same request id.
    Progress {
        /// Echo of the request id.
        id: u64,
        /// Cumulative distinct states explored by the running cell's job.
        states: u64,
        /// Cumulative transitions explored by the running cell's job.
        transitions: u64,
        /// Valuation cells already fully answered.
        cells_done: u64,
    },
    /// Reply to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Reply to [`Request::Ping`].
    Pong,
}

impl Response {
    /// The echoed request id, if any (terminal responses and progress
    /// frames carry one; stats and pong do not).
    pub fn request_id(&self) -> Option<u64> {
        match self {
            Response::Verdict { id, .. }
            | Response::Overloaded { id, .. }
            | Response::Rejected { id, .. }
            | Response::Error { id, .. }
            | Response::ResumeRejected { id, .. }
            | Response::Progress { id, .. } => Some(*id),
            Response::Stats(_) | Response::Pong => None,
        }
    }

    /// Whether this response terminates a check request (exactly one of
    /// these is sent per admitted-or-shed request on a live connection).
    /// Progress frames carry a request id but are *not* terminal.
    pub fn is_terminal(&self) -> bool {
        match self {
            Response::Verdict { .. }
            | Response::Overloaded { .. }
            | Response::Rejected { .. }
            | Response::Error { .. }
            | Response::ResumeRejected { .. } => true,
            Response::Progress { .. } | Response::Stats(_) | Response::Pong => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_verdict(buf: &mut Vec<u8>, v: &SpecVerdict) {
    put_str(buf, &v.name);
    put_u8(buf, v.code);
    put_u64(buf, v.states);
    put_u64(buf, v.transitions);
    put_u8(buf, v.cached as u8);
    put_str(buf, &v.detail);
}

pub(crate) fn put_cell(buf: &mut Vec<u8>, cell: &CellReport) {
    put_u64(buf, cell.valuation.len() as u64);
    for &x in &cell.valuation {
        put_u64(buf, x);
    }
    put_u64(buf, cell.verdicts.len() as u64);
    for v in &cell.verdicts {
        put_verdict(buf, v);
    }
}

fn fault_byte(f: FaultModel) -> u8 {
    match f {
        FaultModel::Byzantine => 0,
        FaultModel::Crash => 1,
        FaultModel::Mixed => 2,
    }
}

fn fault_from_byte(b: u8) -> Option<FaultModel> {
    match b {
        0 => Some(FaultModel::Byzantine),
        1 => Some(FaultModel::Crash),
        2 => Some(FaultModel::Mixed),
        _ => None,
    }
}

/// Encodes a request payload (not including the frame header).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::Check(c) => {
            put_u8(&mut buf, REQ_CHECK);
            put_u64(&mut buf, c.id);
            put_u8(&mut buf, c.priority.band() as u8);
            put_u64(&mut buf, c.deadline_ms);
            put_u8(
                &mut buf,
                (c.progress as u8) | ((c.park_on_interrupt as u8) << 1),
            );
            match &c.source {
                Source::Protocol(name) => {
                    put_u8(&mut buf, 1);
                    put_str(&mut buf, name);
                }
                Source::Family { params, seed } => {
                    put_u8(&mut buf, 2);
                    put_u64(&mut buf, params.phases as u64);
                    put_u64(&mut buf, params.width as u64);
                    put_u64(&mut buf, params.fanout as u64);
                    put_u8(&mut buf, params.guard_density);
                    put_u64(&mut buf, params.shared_vars as u64);
                    put_u64(&mut buf, params.coin_vars as u64);
                    put_u8(&mut buf, fault_byte(params.faults));
                    put_u64(&mut buf, params.resilience as u64);
                    put_u64(&mut buf, *seed);
                }
            }
            put_u64(&mut buf, c.valuations.len() as u64);
            for v in &c.valuations {
                put_u64(&mut buf, v.len() as u64);
                for &x in v {
                    put_u64(&mut buf, x);
                }
            }
            put_u64(&mut buf, c.obligations.len() as u64);
            for name in &c.obligations {
                put_str(&mut buf, name);
            }
        }
        Request::Resume(r) => {
            put_u8(&mut buf, REQ_RESUME);
            put_u64(&mut buf, r.id);
            put_u64(&mut buf, r.token);
            put_u8(&mut buf, r.priority.band() as u8);
            put_u64(&mut buf, r.deadline_ms);
            put_u8(
                &mut buf,
                (r.progress as u8) | ((r.park_on_interrupt as u8) << 1),
            );
        }
        Request::Stats => put_u8(&mut buf, REQ_STATS),
        Request::Ping => put_u8(&mut buf, REQ_PING),
    }
    buf
}

/// Encodes a response payload (not including the frame header).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Verdict { id, cells, resume } => {
            put_u8(&mut buf, RESP_VERDICT);
            put_u64(&mut buf, *id);
            put_u64(&mut buf, cells.len() as u64);
            for cell in cells {
                put_cell(&mut buf, cell);
            }
            match resume {
                None => put_u8(&mut buf, 0),
                Some(t) => {
                    put_u8(&mut buf, 1);
                    put_u64(&mut buf, t.token);
                    put_u64(&mut buf, t.expires_in_ms);
                }
            }
        }
        Response::Overloaded {
            id,
            queue_depth,
            capacity,
            retry_after_hint_ms,
        } => {
            put_u8(&mut buf, RESP_OVERLOADED);
            put_u64(&mut buf, *id);
            put_u64(&mut buf, *queue_depth);
            put_u64(&mut buf, *capacity);
            put_u64(&mut buf, *retry_after_hint_ms);
        }
        Response::ResumeRejected { id, cause } => {
            put_u8(&mut buf, RESP_RESUME_REJECTED);
            put_u64(&mut buf, *id);
            put_u8(&mut buf, cause.byte());
        }
        Response::Progress {
            id,
            states,
            transitions,
            cells_done,
        } => {
            put_u8(&mut buf, RESP_PROGRESS);
            put_u64(&mut buf, *id);
            put_u64(&mut buf, *states);
            put_u64(&mut buf, *transitions);
            put_u64(&mut buf, *cells_done);
        }
        Response::Rejected { id, reason } => {
            put_u8(&mut buf, RESP_REJECTED);
            put_u64(&mut buf, *id);
            put_str(&mut buf, reason);
        }
        Response::Error { id, detail } => {
            put_u8(&mut buf, RESP_ERROR);
            put_u64(&mut buf, *id);
            put_str(&mut buf, detail);
        }
        Response::Stats(s) => {
            put_u8(&mut buf, RESP_STATS);
            for v in [
                s.admitted,
                s.shed,
                s.completed,
                s.orphaned,
                s.rejected,
                s.errors,
                s.cache_hits,
                s.cache_misses,
                s.active_jobs,
                s.queue_depth,
                s.parked,
                s.resumed,
                s.resume_rejected,
                s.checkpoints_evicted,
                s.log_recovered,
            ] {
                put_u64(&mut buf, v);
            }
        }
        Response::Pong => put_u8(&mut buf, RESP_PONG),
    }
    buf
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| WireError::Malformed("truncated payload".into()))?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos + 8;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| WireError::Malformed("truncated payload".into()))?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// `n` raw bytes, borrowed from the payload.
    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError::Malformed("truncated payload".into()))?;
        let b = &self.buf[self.pos..end];
        self.pos = end;
        Ok(b)
    }

    /// A length field that must leave room for `elem_size`-byte elements in
    /// the remaining payload — bounds every allocation by the frame size.
    pub(crate) fn len(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let n = self.u64()? as usize;
        let room = (self.buf.len() - self.pos) / elem_size.max(1);
        if n > room {
            return Err(WireError::Malformed(format!(
                "length {n} exceeds remaining payload"
            )));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        let end = self.pos + n;
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    pub(crate) fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

pub(crate) fn read_verdict(c: &mut Cursor<'_>) -> Result<SpecVerdict, WireError> {
    Ok(SpecVerdict {
        name: c.str()?,
        code: c.u8()?,
        states: c.u64()?,
        transitions: c.u64()?,
        cached: c.u8()? != 0,
        detail: c.str()?,
    })
}

pub(crate) fn read_cell(c: &mut Cursor<'_>) -> Result<CellReport, WireError> {
    let k = c.len(8)?;
    let mut valuation = Vec::with_capacity(k);
    for _ in 0..k {
        valuation.push(c.u64()?);
    }
    let n_verdicts = c.len(8)?;
    let mut verdicts = Vec::with_capacity(n_verdicts);
    for _ in 0..n_verdicts {
        verdicts.push(read_verdict(c)?);
    }
    Ok(CellReport {
        valuation,
        verdicts,
    })
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    let req = match tag {
        REQ_CHECK => {
            let id = c.u64()?;
            let priority = Priority::from_byte(c.u8()?)
                .ok_or_else(|| WireError::Malformed("unknown priority band".into()))?;
            let deadline_ms = c.u64()?;
            let flags = c.u8()?;
            if flags > 3 {
                return Err(WireError::Malformed("unknown request flags".into()));
            }
            let source = match c.u8()? {
                1 => Source::Protocol(c.str()?),
                2 => {
                    let params = FamilyParams {
                        phases: c.u64()? as usize,
                        width: c.u64()? as usize,
                        fanout: c.u64()? as usize,
                        guard_density: c.u8()?,
                        shared_vars: c.u64()? as usize,
                        coin_vars: c.u64()? as usize,
                        faults: fault_from_byte(c.u8()?)
                            .ok_or_else(|| WireError::Malformed("unknown fault model".into()))?,
                        resilience: c.u64()? as i64,
                    };
                    let seed = c.u64()?;
                    Source::Family { params, seed }
                }
                t => return Err(WireError::Malformed(format!("unknown source tag {t}"))),
            };
            let n_vals = c.len(8)?;
            let mut valuations = Vec::with_capacity(n_vals);
            for _ in 0..n_vals {
                let k = c.len(8)?;
                let mut v = Vec::with_capacity(k);
                for _ in 0..k {
                    v.push(c.u64()?);
                }
                valuations.push(v);
            }
            let n_obls = c.len(8)?;
            let mut obligations = Vec::with_capacity(n_obls);
            for _ in 0..n_obls {
                obligations.push(c.str()?);
            }
            Request::Check(CheckRequest {
                id,
                priority,
                deadline_ms,
                source,
                valuations,
                obligations,
                progress: flags & 1 != 0,
                park_on_interrupt: flags & 2 != 0,
            })
        }
        REQ_RESUME => {
            let id = c.u64()?;
            let token = c.u64()?;
            let priority = Priority::from_byte(c.u8()?)
                .ok_or_else(|| WireError::Malformed("unknown priority band".into()))?;
            let deadline_ms = c.u64()?;
            let flags = c.u8()?;
            if flags > 3 {
                return Err(WireError::Malformed("unknown request flags".into()));
            }
            Request::Resume(ResumeRequest {
                id,
                token,
                priority,
                deadline_ms,
                progress: flags & 1 != 0,
                park_on_interrupt: flags & 2 != 0,
            })
        }
        REQ_STATS => Request::Stats,
        REQ_PING => Request::Ping,
        t => return Err(WireError::Malformed(format!("unknown request tag {t}"))),
    };
    c.finish()?;
    Ok(req)
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    let resp = match tag {
        RESP_VERDICT => {
            let id = c.u64()?;
            let n_cells = c.len(8)?;
            let mut cells = Vec::with_capacity(n_cells);
            for _ in 0..n_cells {
                cells.push(read_cell(&mut c)?);
            }
            let resume = match c.u8()? {
                0 => None,
                1 => Some(ResumeToken {
                    token: c.u64()?,
                    expires_in_ms: c.u64()?,
                }),
                _ => return Err(WireError::Malformed("bad resume presence byte".into())),
            };
            Response::Verdict { id, cells, resume }
        }
        RESP_OVERLOADED => Response::Overloaded {
            id: c.u64()?,
            queue_depth: c.u64()?,
            capacity: c.u64()?,
            retry_after_hint_ms: c.u64()?,
        },
        RESP_RESUME_REJECTED => Response::ResumeRejected {
            id: c.u64()?,
            cause: ResumeRejectCause::from_byte(c.u8()?)
                .ok_or_else(|| WireError::Malformed("unknown resume-reject cause".into()))?,
        },
        RESP_PROGRESS => Response::Progress {
            id: c.u64()?,
            states: c.u64()?,
            transitions: c.u64()?,
            cells_done: c.u64()?,
        },
        RESP_REJECTED => Response::Rejected {
            id: c.u64()?,
            reason: c.str()?,
        },
        RESP_ERROR => Response::Error {
            id: c.u64()?,
            detail: c.str()?,
        },
        RESP_STATS => Response::Stats(StatsSnapshot {
            admitted: c.u64()?,
            shed: c.u64()?,
            completed: c.u64()?,
            orphaned: c.u64()?,
            rejected: c.u64()?,
            errors: c.u64()?,
            cache_hits: c.u64()?,
            cache_misses: c.u64()?,
            active_jobs: c.u64()?,
            queue_depth: c.u64()?,
            parked: c.u64()?,
            resumed: c.u64()?,
            resume_rejected: c.u64()?,
            checkpoints_evicted: c.u64()?,
            log_recovered: c.u64()?,
        }),
        RESP_PONG => Response::Pong,
        t => return Err(WireError::Malformed(format!("unknown response tag {t}"))),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_check() -> Request {
        Request::Check(CheckRequest {
            id: 42,
            priority: Priority::High,
            deadline_ms: 250,
            source: Source::Family {
                params: FamilyParams::default(),
                seed: 7,
            },
            valuations: vec![vec![4, 1, 1], vec![5, 1, 1]],
            obligations: vec!["Inv1(0)".into()],
            progress: true,
            park_on_interrupt: true,
        })
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            sample_check(),
            Request::Check(CheckRequest {
                id: 1,
                priority: Priority::Low,
                deadline_ms: 0,
                source: Source::Protocol("MMR14".into()),
                valuations: vec![],
                obligations: vec![],
                progress: false,
                park_on_interrupt: false,
            }),
            Request::Resume(ResumeRequest {
                id: 2,
                token: 0xdead_beef,
                priority: Priority::Normal,
                deadline_ms: 500,
                progress: true,
                park_on_interrupt: false,
            }),
            Request::Stats,
            Request::Ping,
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let verdict = Response::Verdict {
            id: 9,
            cells: vec![CellReport {
                valuation: vec![4, 1, 1],
                verdicts: vec![SpecVerdict {
                    name: "Inv1(0)".into(),
                    code: b'+',
                    states: 120,
                    transitions: 456,
                    cached: true,
                    detail: String::new(),
                }],
            }],
            resume: None,
        };
        let parked = Response::Verdict {
            id: 10,
            cells: vec![],
            resume: Some(ResumeToken {
                token: 77,
                expires_in_ms: 60_000,
            }),
        };
        for resp in [
            verdict,
            parked,
            Response::Overloaded {
                id: 3,
                queue_depth: 64,
                capacity: 64,
                retry_after_hint_ms: 120,
            },
            Response::Rejected {
                id: 4,
                reason: "unknown protocol".into(),
            },
            Response::Error {
                id: 5,
                detail: "worker panicked".into(),
            },
            Response::ResumeRejected {
                id: 6,
                cause: ResumeRejectCause::Evicted,
            },
            Response::Progress {
                id: 7,
                states: 1000,
                transitions: 4000,
                cells_done: 1,
            },
            Response::Stats(StatsSnapshot {
                admitted: 10,
                shed: 2,
                parked: 3,
                log_recovered: 17,
                ..StatsSnapshot::default()
            }),
            Response::Pong,
        ] {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn frames_round_trip_and_enforce_bounds() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"hello");

        // bad magic
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut &bad[..], 64),
            Err(WireError::BadMagic(_))
        ));

        // oversized declaration
        assert!(matches!(
            read_frame(&mut &buf[..], 3),
            Err(WireError::Oversized {
                declared: 5,
                max: 3
            })
        ));

        // truncated payload
        let cut = &buf[..buf.len() - 2];
        assert!(matches!(
            read_frame(&mut &cut[..], 64),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn malformed_payloads_are_typed_errors_not_panics() {
        // every truncation of a valid request decodes to Malformed/err, not
        // a panic, and never over-allocates
        let bytes = encode_request(&sample_check());
        for cut in 0..bytes.len() {
            assert!(decode_request(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // trailing garbage is rejected too
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_request(&extended).is_err());
        // a length field claiming more elements than the payload could hold
        let mut huge = vec![REQ_CHECK];
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_request(&huge).is_err());
    }

    #[test]
    fn terminal_taxonomy() {
        assert!(Response::Overloaded {
            id: 1,
            queue_depth: 0,
            capacity: 0,
            retry_after_hint_ms: 0
        }
        .is_terminal());
        assert!(Response::ResumeRejected {
            id: 2,
            cause: ResumeRejectCause::Unknown
        }
        .is_terminal());
        // progress frames are interim: the client must keep reading
        assert!(!Response::Progress {
            id: 3,
            states: 0,
            transitions: 0,
            cells_done: 0
        }
        .is_terminal());
        assert_eq!(
            Response::Progress {
                id: 3,
                states: 0,
                transitions: 0,
                cells_done: 0
            }
            .request_id(),
            Some(3)
        );
        assert!(!Response::Pong.is_terminal());
        assert_eq!(Response::Stats(StatsSnapshot::default()).request_id(), None);
    }
}
