//! The daemon's durable state: a crash-safe verdict-and-checkpoint log.
//!
//! Built on [`cccore::wal`]: an append-only, per-record-checksummed log
//! holding three record kinds —
//!
//! | tag | record | payload |
//! |-----|--------|---------|
//! | 1   | verdict     | fingerprint triple, verdict code, costs, detail |
//! | 2   | checkpoint  | resume token, encoded [`crate::registry::ParkedJob`] |
//! | 3   | drop        | resume token (tombstone for a consumed checkpoint) |
//!
//! On startup the server replays the log (truncating any torn tail, never
//! erroring), preloads the result cache from the verdict records, and
//! re-registers every checkpoint that has no later tombstone.  The
//! recovered cache is therefore always a **prefix of what was
//! acknowledged**: a verdict record is appended *before* the response frame
//! is written, and replay never trusts bytes past the first corruption.
//!
//! Durability of verdict appends is governed by [`FsyncPolicy`];
//! checkpoint appends always fsync, because the resume token they back is
//! about to be handed to the client as a promise.
//!
//! Compaction rewrites the live state (current cache + parked checkpoints)
//! into a staged next-generation file and swaps it in with an atomic
//! rename — a crash at any point leaves either the old or the new
//! generation, never a mix.  The swap is instrumented with
//! [`ccchecker::fault::SITE_COMPACT_SWAP`]; appends with
//! [`ccchecker::fault::SITE_LOG_APPEND`] (fired *between* the two halves
//! of a record write, so an abort there leaves a genuinely torn record)
//! and [`ccchecker::fault::SITE_LOG_FSYNC`].

use crate::cache::{CacheKey, CachedVerdict};
use ccchecker::fault;
use cccore::fingerprint::{verdict_code, verdict_from_code};
use cccore::wal;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Record tag: a definite verdict for a fingerprint triple.
const TAG_VERDICT: u8 = 1;
/// Record tag: a parked job checkpoint keyed by resume token.
const TAG_CHECKPOINT: u8 = 2;
/// Record tag: tombstone for a consumed or evicted checkpoint.
const TAG_CKPT_DROP: u8 = 3;

/// Fixed bytes of a verdict payload before the variable-length detail.
const VERDICT_FIXED_BYTES: usize = 8 * 3 + 1 + 8 + 8;

/// When to fsync verdict appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append (safest, slowest).
    Always,
    /// fsync after every `n` appends.
    EveryN(u32),
    /// fsync when at least this much time passed since the last sync.
    IntervalMs(u64),
    /// Never fsync explicitly (the OS flushes on its own schedule; a
    /// process crash still loses nothing, only power loss can).
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync-policy` forms: `always`, `never`, `every=N`,
    /// `interval=MS`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => return Some(FsyncPolicy::Always),
            "never" => return Some(FsyncPolicy::Never),
            _ => {}
        }
        if let Some(n) = s.strip_prefix("every=") {
            return n.parse().ok().filter(|&n| n > 0).map(FsyncPolicy::EveryN);
        }
        if let Some(ms) = s.strip_prefix("interval=") {
            return ms.parse().ok().map(FsyncPolicy::IntervalMs);
        }
        None
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every={n}"),
            FsyncPolicy::IntervalMs(ms) => write!(f, "interval={ms}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// What a log replay reconstructed.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Every definite verdict on the clean prefix, in append order.
    pub verdicts: Vec<(CacheKey, CachedVerdict)>,
    /// Parked checkpoints still alive (no later tombstone), token-sorted.
    pub checkpoints: Vec<(u64, Vec<u8>)>,
    /// Bytes discarded as torn or corrupt during replay.
    pub truncated_bytes: u64,
}

/// The open verdict log: append verdicts and checkpoints, replay on open,
/// compact into a fresh generation when the dead-record fraction grows.
pub struct VerdictLog {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    generation: u64,
    appends_since_sync: u32,
    last_sync: Instant,
    /// Records appended since open or the last compaction (live + dead).
    appends_since_compact: u64,
    /// Auto-compaction threshold in appended records (0 disables).
    compact_every: u64,
}

fn encode_verdict_payload(key: &CacheKey, v: &CachedVerdict) -> Vec<u8> {
    let mut p = Vec::with_capacity(VERDICT_FIXED_BYTES + v.detail.len());
    p.extend_from_slice(&key.0.to_le_bytes());
    p.extend_from_slice(&key.1.to_le_bytes());
    p.extend_from_slice(&key.2.to_le_bytes());
    p.push(verdict_code(v.status));
    p.extend_from_slice(&(v.states_explored as u64).to_le_bytes());
    p.extend_from_slice(&(v.transitions_explored as u64).to_le_bytes());
    p.extend_from_slice(v.detail.as_bytes());
    p
}

fn decode_verdict_payload(p: &[u8]) -> Option<(CacheKey, CachedVerdict)> {
    if p.len() < VERDICT_FIXED_BYTES {
        return None;
    }
    let u = |i: usize| u64::from_le_bytes(p[i..i + 8].try_into().unwrap());
    let status = verdict_from_code(p[24])?;
    let detail = String::from_utf8(p[VERDICT_FIXED_BYTES..].to_vec()).ok()?;
    Some((
        (u(0), u(8), u(16)),
        CachedVerdict {
            status,
            states_explored: u(25) as usize,
            transitions_explored: u(33) as usize,
            detail,
        },
    ))
}

fn recover(replay: &wal::Replay) -> RecoveredState {
    let mut verdicts = Vec::new();
    let mut checkpoints: HashMap<u64, Vec<u8>> = HashMap::new();
    for rec in &replay.records {
        match rec.tag {
            TAG_VERDICT => {
                if let Some(entry) = decode_verdict_payload(&rec.payload) {
                    verdicts.push(entry);
                }
            }
            TAG_CHECKPOINT if rec.payload.len() >= 8 => {
                let token = u64::from_le_bytes(rec.payload[..8].try_into().unwrap());
                checkpoints.insert(token, rec.payload[8..].to_vec());
            }
            TAG_CKPT_DROP if rec.payload.len() >= 8 => {
                let token = u64::from_le_bytes(rec.payload[..8].try_into().unwrap());
                checkpoints.remove(&token);
            }
            _ => {} // unknown tag: a future record kind, skip it
        }
    }
    let mut checkpoints: Vec<(u64, Vec<u8>)> = checkpoints.into_iter().collect();
    checkpoints.sort_by_key(|(t, _)| *t);
    RecoveredState {
        verdicts,
        checkpoints,
        truncated_bytes: replay.truncated_bytes,
    }
}

impl VerdictLog {
    /// Opens (or creates) the log at `path`, truncating any torn tail, and
    /// returns it together with the recovered state.  Auto-compaction
    /// defaults to every 4096 appended records (`CC_SERVE_COMPACT_EVERY`
    /// overrides; 0 disables).
    pub fn open(path: &Path, policy: FsyncPolicy) -> io::Result<(VerdictLog, RecoveredState)> {
        let (file, replay) = wal::open_log(path, 1)?;
        let recovered = recover(&replay);
        let compact_every = std::env::var("CC_SERVE_COMPACT_EVERY")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(4096);
        Ok((
            VerdictLog {
                file,
                path: path.to_path_buf(),
                policy,
                generation: replay.generation,
                appends_since_sync: 0,
                last_sync: Instant::now(),
                appends_since_compact: 0,
                compact_every,
            },
            recovered,
        ))
    }

    /// The generation of the live file (bumped by each compaction).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends one record; an abort injected at `SITE_LOG_APPEND` lands
    /// between the two halves of the write, leaving a genuinely torn record
    /// for recovery to truncate.
    fn append(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        let rec = wal::encode_record(tag, payload);
        let mid = rec.len() / 2;
        self.file.write_all(&rec[..mid])?;
        fault::maybe_fire(fault::SITE_LOG_APPEND);
        self.file.write_all(&rec[mid..])?;
        self.appends_since_compact += 1;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        fault::maybe_fire(fault::SITE_LOG_FSYNC);
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    fn maybe_sync(&mut self) -> io::Result<()> {
        self.appends_since_sync += 1;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            FsyncPolicy::IntervalMs(ms) => self.last_sync.elapsed() >= Duration::from_millis(ms),
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends a definite verdict, fsyncing per the configured policy.
    pub fn append_verdict(&mut self, key: &CacheKey, v: &CachedVerdict) -> io::Result<()> {
        self.append(TAG_VERDICT, &encode_verdict_payload(key, v))?;
        self.maybe_sync()
    }

    /// Appends a parked checkpoint.  Always fsyncs: the resume token this
    /// record backs is about to be promised to the client.
    pub fn append_checkpoint(&mut self, token: u64, bytes: &[u8]) -> io::Result<()> {
        let mut payload = Vec::with_capacity(8 + bytes.len());
        payload.extend_from_slice(&token.to_le_bytes());
        payload.extend_from_slice(bytes);
        self.append(TAG_CHECKPOINT, &payload)?;
        self.sync()
    }

    /// Appends a tombstone for a consumed or evicted checkpoint.
    pub fn append_drop(&mut self, token: u64) -> io::Result<()> {
        self.append(TAG_CKPT_DROP, &token.to_le_bytes())?;
        self.maybe_sync()
    }

    /// Whether enough records accumulated since the last compaction.
    pub fn should_compact(&self) -> bool {
        self.compact_every > 0 && self.appends_since_compact >= self.compact_every
    }

    /// Rewrites the live state into a staged next-generation file and
    /// atomically swaps it over the live path.  A crash before the rename
    /// (see `SITE_COMPACT_SWAP`) leaves the old generation intact.
    pub fn compact(
        &mut self,
        verdicts: &[(CacheKey, CachedVerdict)],
        checkpoints: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        let staged_path = self.path.with_file_name(format!(
            "{}.staged",
            self.path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "cache.log".into())
        ));
        let next_gen = self.generation + 1;
        {
            let mut staged = File::create(&staged_path)?;
            staged.write_all(&wal::encode_header(next_gen))?;
            for (key, v) in verdicts {
                staged.write_all(&wal::encode_record(
                    TAG_VERDICT,
                    &encode_verdict_payload(key, v),
                ))?;
            }
            for (token, bytes) in checkpoints {
                let mut payload = Vec::with_capacity(8 + bytes.len());
                payload.extend_from_slice(&token.to_le_bytes());
                payload.extend_from_slice(bytes);
                staged.write_all(&wal::encode_record(TAG_CHECKPOINT, &payload))?;
            }
            staged.sync_data()?;
        }
        fault::maybe_fire(fault::SITE_COMPACT_SWAP);
        wal::commit_replace(&staged_path, &self.path)?;
        // the old handle points at the unlinked inode; reopen the new file
        let (file, _) = wal::open_log(&self.path, next_gen)?;
        self.file = file;
        self.generation = next_gen;
        self.appends_since_sync = 0;
        self.appends_since_compact = 0;
        self.last_sync = Instant::now();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccchecker::CheckStatus;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccstore-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cache.log")
    }

    fn verdict(detail: &str) -> CachedVerdict {
        CachedVerdict {
            status: CheckStatus::Holds,
            states_explored: 12,
            transitions_explored: 34,
            detail: detail.to_string(),
        }
    }

    #[test]
    fn fsync_policy_parses_all_forms() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every=8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(
            FsyncPolicy::parse("interval=250"),
            Some(FsyncPolicy::IntervalMs(250))
        );
        assert_eq!(FsyncPolicy::parse("every=0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        for p in ["always", "never", "every=8", "interval=250"] {
            assert_eq!(FsyncPolicy::parse(p).unwrap().to_string(), p);
        }
    }

    #[test]
    fn verdicts_and_checkpoints_survive_reopen_with_tombstones_applied() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        let (mut log, rec) = VerdictLog::open(&path, FsyncPolicy::Always).unwrap();
        assert!(rec.verdicts.is_empty());
        log.append_verdict(&(1, 2, 3), &verdict("first")).unwrap();
        log.append_verdict(&(4, 5, 6), &verdict("second")).unwrap();
        log.append_checkpoint(10, b"parked-a").unwrap();
        log.append_checkpoint(11, b"parked-b").unwrap();
        log.append_drop(10).unwrap();
        drop(log);

        let (log, rec) = VerdictLog::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.verdicts.len(), 2);
        assert_eq!(rec.verdicts[0].0, (1, 2, 3));
        assert_eq!(rec.verdicts[0].1.detail, "first");
        assert_eq!(rec.verdicts[1].1.status, CheckStatus::Holds);
        assert_eq!(
            rec.checkpoints,
            vec![(11, b"parked-b".to_vec())],
            "the dropped checkpoint stays dropped"
        );
        assert_eq!(log.generation(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_torn_offset_of_the_final_record_recovers_the_prefix() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let (mut log, _) = VerdictLog::open(&path, FsyncPolicy::Always).unwrap();
        log.append_verdict(&(1, 1, 1), &verdict("kept-1")).unwrap();
        log.append_verdict(&(2, 2, 2), &verdict("kept-2")).unwrap();
        drop(log);
        let prefix = std::fs::read(&path).unwrap();
        let (mut log, _) = VerdictLog::open(&path, FsyncPolicy::Always).unwrap();
        log.append_verdict(&(3, 3, 3), &verdict("torn-victim"))
            .unwrap();
        drop(log);
        let full = std::fs::read(&path).unwrap();

        for cut in prefix.len()..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, rec) = VerdictLog::open(&path, FsyncPolicy::Always).unwrap();
            assert_eq!(rec.verdicts.len(), 2, "cut at {cut}");
            assert_eq!(rec.verdicts[1].1.detail, "kept-2", "cut at {cut}");
            assert_eq!(rec.truncated_bytes, (cut - prefix.len()) as u64);
            // and the open truncated the torn tail in place
            assert_eq!(std::fs::read(&path).unwrap().len(), prefix.len());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_bumps_the_generation_and_sheds_dead_records() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        let (mut log, _) = VerdictLog::open(&path, FsyncPolicy::Always).unwrap();
        for i in 0..50u64 {
            log.append_verdict(&(i, i, i), &verdict("bulk")).unwrap();
        }
        log.append_checkpoint(5, b"dead").unwrap();
        log.append_drop(5).unwrap();
        log.append_checkpoint(6, b"alive").unwrap();
        let before = std::fs::metadata(&path).unwrap().len();

        // compact down to two live verdicts and the one live checkpoint
        let live = vec![((1, 1, 1), verdict("bulk")), ((2, 2, 2), verdict("bulk"))];
        let ckpts = vec![(6u64, b"alive".to_vec())];
        log.compact(&live, &ckpts).unwrap();
        assert_eq!(log.generation(), 2);
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(
            after < before,
            "compaction shrank the log ({before} -> {after})"
        );

        // appends after the swap land in the new generation
        log.append_verdict(&(9, 9, 9), &verdict("post-swap"))
            .unwrap();
        drop(log);
        let (log, rec) = VerdictLog::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(log.generation(), 2);
        assert_eq!(rec.verdicts.len(), 3);
        assert_eq!(rec.verdicts[2].1.detail, "post-swap");
        assert_eq!(rec.checkpoints, vec![(6, b"alive".to_vec())]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_compaction_threshold_counts_appends() {
        let path = tmp("threshold");
        let _ = std::fs::remove_file(&path);
        std::env::remove_var("CC_SERVE_COMPACT_EVERY");
        let (mut log, _) = VerdictLog::open(&path, FsyncPolicy::Never).unwrap();
        log.compact_every = 3;
        assert!(!log.should_compact());
        for i in 0..3u64 {
            log.append_verdict(&(i, i, i), &verdict("x")).unwrap();
        }
        assert!(log.should_compact());
        log.compact(&[], &[]).unwrap();
        assert!(!log.should_compact(), "compaction resets the counter");
        std::fs::remove_file(&path).ok();
    }
}
