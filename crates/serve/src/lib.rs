//! `ccserve`: a resident verification daemon with admission control,
//! backpressure, and graceful degradation.
//!
//! The rest of the workspace answers one verification question per process
//! invocation.  This crate keeps the checker resident: a daemon accepts
//! verification requests — a protocol by Table II name or a generated
//! family by parameter point, a valuation grid, an obligation filter, and
//! a per-request deadline — runs them as `ccchecker::CheckJob`s on a fixed
//! worker budget, and shares definite verdicts across requests through a
//! fingerprint-keyed result cache (see `cccore::fingerprint`).
//!
//! # Wire protocol & failure model
//!
//! **Framing.**  Every message is one frame: `[magic u32][length u32]
//! [payload]`, little-endian, with magic [`wire::MAGIC`].  The length is
//! bounded by the server's `max_frame_bytes` knob.  The payload encoding
//! is fixed-width integers plus length-prefixed UTF-8 strings — see
//! [`wire`] for the exact layouts.  The protocol is deliberately
//! hand-rolled over std TCP / Unix sockets: the workspace builds offline,
//! so no serde, no async runtime.
//!
//! **Request taxonomy.**  `Check` (run a verification job), `Resume`
//! (continue a parked job by resume token), `Stats` (counter snapshot),
//! `Ping` (liveness).  A check request carries a client-chosen id that
//! every terminal response echoes, so clients may pipeline requests over
//! one connection.  Two opt-in flags ride on check (and resume) requests:
//! `progress` subscribes to interim `Progress` frames, `park_on_interrupt`
//! asks the daemon to park a deadline-tripped job instead of discarding
//! its work.
//!
//! **Response taxonomy.**  Exactly one *terminal* response per check or
//! resume request on a live connection:
//!
//! * `Verdict` — the request was admitted and ran; one report per
//!   valuation with a `+`/`-`/`?` glyph per obligation.  If the deadline
//!   tripped a `park_on_interrupt` job, the verdict additionally carries a
//!   `ResumeToken`: the degraded `?` cells can be continued.
//! * `Overloaded` — the bounded admission queue was full; the request was
//!   shed *at admission* and nothing was buffered.  Backpressure is always
//!   explicit: the daemon never queues beyond `queue_capacity`.  The
//!   response carries `retry_after_hint_ms` — queue depth times the
//!   recent mean service time over the worker count — so clients can back
//!   off proportionally to actual load.
//! * `Rejected` — understood but unserviceable: unknown protocol name,
//!   valuation arity mismatch, inadmissible valuation, empty obligation
//!   match, malformed payload (id 0 when the id itself did not decode).
//! * `ResumeRejected` — a resume whose token cannot be honoured, with a
//!   typed cause: `Unknown` (never issued / already consumed), `Evicted`
//!   (displaced by LRU pressure on the checkpoint registry), `Expired`
//!   (outlived its TTL).  The client always knows whether to retry from
//!   scratch.
//! * `Error` — the daemon failed internally (e.g. a job panicked on every
//!   supervised attempt).
//!
//! `Stats`/`Pong`/`Progress` replies are non-terminal: a client that set
//! the `progress` flag must keep reading frames for its id until a
//! terminal one arrives (`ServeClient::recv_terminal` does exactly that).
//! Frame-level failures are
//! handled by class: a malformed payload inside a sound frame is rejected
//! and the connection keeps serving (the stream is still in sync); a bad
//! magic or an oversized length declaration is rejected and the connection
//! closed (the stream cannot be resynchronised); a short read is a
//! disconnect.
//!
//! **Degradation.**  A per-request `deadline_ms` becomes a
//! `ccchecker::JobBudget` deadline on each cell's job.  Cells past the
//! deadline degrade to `?` verdicts with detail `interrupted: deadline
//! exceeded` — the same structured degradation as `VerifierConfig`
//! budgets: completed obligations keep their verdicts, owed ones are
//! `Unknown`, never fabricated.  Only definite verdicts enter the
//! cross-request cache, so one client's tight deadline cannot poison
//! another's answer.
//!
//! **Disconnects.**  The reader marks the connection dead and cancels the
//! cancel tokens of every queued or running request of that connection.
//! Running jobs observe the token at their next wave boundary, surrender,
//! and the worker slot is released without a response (the `orphaned`
//! counter records it).  The mark-dead order (liveness flag before token
//! sweep) closes the race with a job registering its token concurrently.
//!
//! **Supervision.**  A panicking job is retried under
//! `ccchecker::RetryPolicy` — fresh `CheckJob` per attempt, seeded-jitter
//! exponential backoff — generalising the sweep's one-shot fresh-pool
//! retry.  Exhausted attempts produce a typed `Error` response; the daemon
//! itself never dies.  The daemon paths are instrumented with the
//! always-compiled `ccchecker::fault` sites `SITE_ADMISSION`,
//! `SITE_RESPONSE_ENCODE` and `SITE_SOCKET_WRITE`, so the robustness suite
//! drives every failure path deterministically.
//!
//! # Durability contract
//!
//! With a cache log configured (`--cache-log PATH`), the daemon's durable
//! state — the cross-request verdict cache and the parked-job checkpoint
//! registry — survives process death, including `kill -9` at any byte:
//!
//! 1. **Acknowledge-after-append.**  A definite verdict is appended to the
//!    log *before* the response frame that reports it is written; a parked
//!    checkpoint is appended (and fsync'd, regardless of policy) *before*
//!    the resume token is promised.  Therefore the recovered state is
//!    always a **prefix of what was acknowledged** — a restarted daemon may
//!    have forgotten unacknowledged work, but can never serve a verdict it
//!    did not compute, and never fabricates one.
//! 2. **Truncate-don't-trust.**  Every record is length-prefixed and
//!    FNV-64-checksummed ([`cccore::wal`]); replay stops silently at the
//!    first torn or checksum-failing record and the open truncates the torn
//!    tail in place.  Recovery never errors on a torn file.
//! 3. **Atomic compaction.**  Compaction writes the live state into a
//!    staged next-generation file, fsyncs it, and swaps it in with one
//!    rename (plus a directory fsync).  A crash at any point leaves either
//!    the old or the new generation, never a mix.
//! 4. **Typed resume across restarts.**  A resume token from before a
//!    crash either continues the job (its checkpoint record survived) or
//!    fails typed (`Unknown`/`Evicted`/`Expired`) — never hangs, never
//!    produces a wrong verdict.
//!
//! Verdict-append durability is tunable via `--fsync-policy`
//! (`always` | `every=N` | `interval=MS` | `never`); see
//! [`store::FsyncPolicy`].  Recovery flow:
//!
//! ```text
//!             crash (kill -9, torn append, mid-compaction, ...)
//!                                 │
//!                                 ▼
//!   restart ──▶ wal::open_log ──▶ replay records ──▶ checksum fails /
//!               │                 (clean prefix)     torn tail?
//!               │                      │                  │ yes
//!               │                      │                  ▼
//!               │                      │            truncate in place
//!               │                      ▼
//!               │   ┌──────────── recovered state ────────────┐
//!               │   │ verdict records → ResultCache.preload   │
//!               │   │ checkpoint recs  → CheckpointRegistry   │
//!               │   │   (minus tombstoned tokens, fresh TTL)  │
//!               │   └──────────────────────────────────────────┘
//!               ▼
//!        serve: cache hits answer instantly (log_recovered counts
//!        preloaded verdicts); resumes continue or reject typed
//! ```
//!
//! **Knob precedence.**  Explicit [`ServeConfig`] fields beat environment
//! variables beat defaults: `CC_SERVE_WORKERS` (worker slots),
//! `CC_SERVE_QUEUE` (admission capacity), `CC_SERVE_CACHE` (result-cache
//! capacity), `CC_SERVE_MAX_FRAME` (frame bound), `CC_SERVE_CKPT`
//! (checkpoint-registry slots), `CC_SERVE_CKPT_TTL_MS` (parked-job TTL),
//! `CC_SERVE_COMPACT_EVERY` (auto-compaction threshold in appended
//! records).  In-check threading keeps following `CC_CHECK_THREADS`
//! through `CheckerOptions`, unchanged.

pub mod cache;
pub mod client;
pub mod queue;
mod registry;
pub mod server;
pub mod store;
pub mod transport;
pub mod wire;

pub use cache::ResultCache;
pub use client::ServeClient;
pub use queue::AdmissionQueue;
pub use server::{ServeConfig, Server};
pub use store::{FsyncPolicy, RecoveredState, VerdictLog};
pub use wire::{
    CellReport, CheckRequest, Priority, Request, Response, ResumeRejectCause, ResumeRequest,
    ResumeToken, Source, SpecVerdict, StatsSnapshot, WireError,
};
