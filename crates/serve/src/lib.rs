//! `ccserve`: a resident verification daemon with admission control,
//! backpressure, and graceful degradation.
//!
//! The rest of the workspace answers one verification question per process
//! invocation.  This crate keeps the checker resident: a daemon accepts
//! verification requests — a protocol by Table II name or a generated
//! family by parameter point, a valuation grid, an obligation filter, and
//! a per-request deadline — runs them as `ccchecker::CheckJob`s on a fixed
//! worker budget, and shares definite verdicts across requests through a
//! fingerprint-keyed result cache (see `cccore::fingerprint`).
//!
//! # Wire protocol & failure model
//!
//! **Framing.**  Every message is one frame: `[magic u32][length u32]
//! [payload]`, little-endian, with magic [`wire::MAGIC`].  The length is
//! bounded by the server's `max_frame_bytes` knob.  The payload encoding
//! is fixed-width integers plus length-prefixed UTF-8 strings — see
//! [`wire`] for the exact layouts.  The protocol is deliberately
//! hand-rolled over std TCP / Unix sockets: the workspace builds offline,
//! so no serde, no async runtime.
//!
//! **Request taxonomy.**  `Check` (run a verification job), `Stats`
//! (counter snapshot), `Ping` (liveness).  A check request carries a
//! client-chosen id that every terminal response echoes, so clients may
//! pipeline requests over one connection.
//!
//! **Response taxonomy.**  Exactly one *terminal* response per check
//! request on a live connection:
//!
//! * `Verdict` — the request was admitted and ran; one report per
//!   valuation with a `+`/`-`/`?` glyph per obligation.
//! * `Overloaded` — the bounded admission queue was full; the request was
//!   shed *at admission* and nothing was buffered.  Backpressure is always
//!   explicit: the daemon never queues beyond `queue_capacity`.
//! * `Rejected` — understood but unserviceable: unknown protocol name,
//!   valuation arity mismatch, inadmissible valuation, empty obligation
//!   match, malformed payload (id 0 when the id itself did not decode).
//! * `Error` — the daemon failed internally (e.g. a job panicked on every
//!   supervised attempt).
//!
//! `Stats`/`Pong` replies are non-terminal.  Frame-level failures are
//! handled by class: a malformed payload inside a sound frame is rejected
//! and the connection keeps serving (the stream is still in sync); a bad
//! magic or an oversized length declaration is rejected and the connection
//! closed (the stream cannot be resynchronised); a short read is a
//! disconnect.
//!
//! **Degradation.**  A per-request `deadline_ms` becomes a
//! `ccchecker::JobBudget` deadline on each cell's job.  Cells past the
//! deadline degrade to `?` verdicts with detail `interrupted: deadline
//! exceeded` — the same structured degradation as `VerifierConfig`
//! budgets: completed obligations keep their verdicts, owed ones are
//! `Unknown`, never fabricated.  Only definite verdicts enter the
//! cross-request cache, so one client's tight deadline cannot poison
//! another's answer.
//!
//! **Disconnects.**  The reader marks the connection dead and cancels the
//! cancel tokens of every queued or running request of that connection.
//! Running jobs observe the token at their next wave boundary, surrender,
//! and the worker slot is released without a response (the `orphaned`
//! counter records it).  The mark-dead order (liveness flag before token
//! sweep) closes the race with a job registering its token concurrently.
//!
//! **Supervision.**  A panicking job is retried under
//! `ccchecker::RetryPolicy` — fresh `CheckJob` per attempt, seeded-jitter
//! exponential backoff — generalising the sweep's one-shot fresh-pool
//! retry.  Exhausted attempts produce a typed `Error` response; the daemon
//! itself never dies.  The daemon paths are instrumented with the
//! always-compiled `ccchecker::fault` sites `SITE_ADMISSION`,
//! `SITE_RESPONSE_ENCODE` and `SITE_SOCKET_WRITE`, so the robustness suite
//! drives every failure path deterministically.
//!
//! **Knob precedence.**  Explicit [`ServeConfig`] fields beat environment
//! variables beat defaults: `CC_SERVE_WORKERS` (worker slots),
//! `CC_SERVE_QUEUE` (admission capacity), `CC_SERVE_CACHE` (result-cache
//! capacity), `CC_SERVE_MAX_FRAME` (frame bound).  In-check threading
//! keeps following `CC_CHECK_THREADS` through `CheckerOptions`, unchanged.

pub mod cache;
pub mod client;
pub mod queue;
pub mod server;
pub mod transport;
pub mod wire;

pub use cache::ResultCache;
pub use client::ServeClient;
pub use queue::AdmissionQueue;
pub use server::{ServeConfig, Server};
pub use wire::{
    CellReport, CheckRequest, Priority, Request, Response, Source, SpecVerdict, StatsSnapshot,
    WireError,
};
