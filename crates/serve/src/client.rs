//! A small blocking client for the daemon, used by the test and bench
//! harnesses (and usable as a library API).
//!
//! The client is deliberately thin: it frames requests, decodes responses,
//! and exposes the raw byte path so robustness tests can send malformed
//! frames.  Pipelining is supported by cloning the socket into independent
//! send and receive halves ([`ServeClient::try_clone`]).

use crate::transport::Stream;
use crate::wire::{
    encode_request, read_frame, write_frame, Request, Response, StatsSnapshot, WireError,
    DEFAULT_MAX_FRAME,
};
use std::io::{self, Write};
use std::net::SocketAddr;

/// A blocking connection to a `ccserve` daemon.
pub struct ServeClient {
    stream: Stream,
    max_frame: usize,
}

impl ServeClient {
    /// Connects over TCP.
    pub fn connect_tcp(addr: SocketAddr) -> io::Result<ServeClient> {
        Ok(ServeClient {
            stream: Stream::connect_tcp(addr)?,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> io::Result<ServeClient> {
        Ok(ServeClient {
            stream: Stream::connect_unix(path)?,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// This client with a different response-size bound.
    pub fn with_max_frame(mut self, max: usize) -> Self {
        self.max_frame = max;
        self
    }

    /// An independent handle onto the same connection (e.g. one half
    /// sending, the other receiving).
    pub fn try_clone(&self) -> io::Result<ServeClient> {
        Ok(ServeClient {
            stream: self.stream.try_clone()?,
            max_frame: self.max_frame,
        })
    }

    /// Sends one request frame without waiting for the response.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_request(req))
    }

    /// Sends raw payload bytes as one (correctly framed) frame — for
    /// robustness tests that need syntactically valid frames with garbage
    /// inside.
    pub fn send_raw_payload(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Writes raw bytes directly to the socket, bypassing framing — for
    /// robustness tests that corrupt the frame header itself.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Receives the next response frame.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        let payload = read_frame(&mut self.stream, self.max_frame)?;
        crate::wire::decode_response(&payload)
    }

    /// Sends a request and waits for the next response.
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        self.send(req)?;
        self.recv()
    }

    /// Receives frames until a *terminal* response arrives, discarding
    /// interim ones (`Progress`, and any interleaved `Stats`/`Pong`).
    /// Returns the terminal response and how many frames were skipped.
    pub fn recv_terminal(&mut self) -> Result<(Response, u64), WireError> {
        let mut skipped = 0;
        loop {
            let resp = self.recv()?;
            if resp.is_terminal() {
                return Ok((resp, skipped));
            }
            skipped += 1;
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(WireError::Malformed(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Fetches the server counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(WireError::Malformed(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Closes both socket directions (an explicit disconnect).
    pub fn disconnect(self) {
        self.stream.shutdown_both();
    }
}
