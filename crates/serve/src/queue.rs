//! Bounded multi-priority admission queue with explicit shed-on-full.
//!
//! The queue is the daemon's only buffer between admission and the worker
//! pool, and it is *bounded*: when all bands together hold `capacity`
//! entries, [`AdmissionQueue::push`] fails immediately and hands the entry
//! back, so admission can send a typed `Overloaded` response instead of
//! buffering without limit.  Workers pop the highest-priority non-empty
//! band; within a band, FIFO.

use crate::wire::Priority;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    bands: [VecDeque<T>; 3],
    len: usize,
    closed: bool,
}

/// A bounded three-band priority queue shared by admission and workers.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` entries across all bands.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                bands: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues an entry, or returns it unchanged if the queue is full or
    /// closed (the caller sheds).  Never blocks.
    pub fn push(&self, item: T, priority: Priority) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.len >= self.capacity {
            return Err(item);
        }
        inner.bands[priority.band()].push_back(item);
        inner.len += 1;
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks until an entry is available (highest band first) or the queue
    /// is closed and drained; `None` means shut down.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            for band in 0..inner.bands.len() {
                if let Some(item) = inner.bands[band].pop_front() {
                    inner.len -= 1;
                    return Some(item);
                }
            }
            if inner.closed {
                return None;
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: pending entries still drain, further pushes shed,
    /// and idle workers wake up to exit.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_when_full_and_drains_by_priority() {
        let q = AdmissionQueue::new(3);
        assert!(q.push(1, Priority::Low).is_ok());
        assert!(q.push(2, Priority::Normal).is_ok());
        assert!(q.push(3, Priority::High).is_ok());
        assert_eq!(q.push(4, Priority::High), Err(4));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert!(q.is_empty());
    }

    #[test]
    fn close_wakes_blocked_workers_and_sheds_new_pushes() {
        let q = Arc::new(AdmissionQueue::<u32>::new(2));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // the worker is (eventually) blocked in pop; close must wake it
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
        assert_eq!(q.push(9, Priority::Normal), Err(9));
    }

    #[test]
    fn close_still_drains_queued_entries() {
        let q = AdmissionQueue::new(4);
        q.push(1, Priority::Normal).unwrap();
        q.push(2, Priority::Normal).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
