//! Packed configurations: a compact multi-round snapshot representation.
//!
//! The single-round explicit checker runs on the even flatter fixed-stride
//! rows of [`crate::RowEngine`]; `PackedConfig` is the general,
//! variable-length packing that also covers multi-round configurations,
//! kept for future multi-round search and decode-on-demand snapshots.
//!
//! Explicit-state checking only needs three things from a visited
//! configuration: a dedup key, a stored representation that survives until
//! counterexample reconstruction, and (rarely) the full [`Configuration`]
//! back.  [`PackedConfig`] serves all three with a single boxed byte buffer
//! — the flattened `(counters, vars)` matrix of the active rounds, one byte
//! per value — plus a precomputed FxHash-style 64-bit pre-hash, so hash-map
//! probes never re-walk the bytes and stored nodes never carry a redundant
//! `Configuration` clone next to a byte-key copy.
//!
//! Encoding into a caller-provided scratch buffer
//! ([`PackedConfig::encode_into`]) lets the search test membership of a
//! candidate successor without allocating; only genuinely new states are
//! committed to a boxed buffer.

use crate::config::Configuration;
use ccta::{LocId, VarId};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One step of an FxHash-style multiply-xor hash (the firefox hash used by
/// rustc): cheap, deterministic and good enough for byte-fingerprint keys.
#[inline]
pub fn fx_mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Hashes a byte slice with the FxHash-style mixer, 8 bytes at a time.
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut hash = bytes.len() as u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash = fx_mix(hash, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut word = [0u8; 8];
        word[..rest.len()].copy_from_slice(rest);
        hash = fx_mix(hash, u64::from_le_bytes(word));
    }
    hash
}

/// A packed, immutable snapshot of a [`Configuration`].
///
/// The byte layout is the active-round prefix of the configuration,
/// flattened round by round as `counters ++ vars`, one byte per value
/// (explicit-state checking only runs on small concrete valuations, so every
/// value fits in a `u8`; encoding panics otherwise).  Equality is byte
/// equality; the 64-bit pre-hash is stored so repeated hashing is free.
#[derive(Debug, Clone)]
pub struct PackedConfig {
    bytes: Box<[u8]>,
    hash: u64,
}

impl PackedConfig {
    /// Packs a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any counter or variable value exceeds 255.
    pub fn encode(cfg: &Configuration) -> Self {
        let mut bytes = Vec::new();
        let hash = Self::encode_into(cfg, &mut bytes);
        PackedConfig {
            bytes: bytes.into_boxed_slice(),
            hash,
        }
    }

    /// Packs a configuration into a reusable scratch buffer (cleared first)
    /// and returns the pre-hash of the encoded bytes.  This is the
    /// allocation-free membership-test path of the search loop.
    ///
    /// # Panics
    ///
    /// Panics if any counter or variable value exceeds 255.
    pub fn encode_into(cfg: &Configuration, out: &mut Vec<u8>) -> u64 {
        out.clear();
        let active = cfg.max_active_round().map_or(0, |r| r as usize + 1);
        out.reserve(active * (cfg.num_locations() + cfg.num_vars()));
        for round in 0..active as u32 {
            // the active prefix is materialised by construction
            let counters = cfg.counters_slice(round).expect("active round");
            let vars = cfg.vars_slice(round).expect("active round");
            // range-check with one vectorisable OR-fold per row, then cast
            let max = counters.iter().chain(vars.iter()).fold(0u64, |a, &v| a | v);
            assert!(
                max <= u8::MAX as u64,
                "configuration value {max} too large for packed encoding"
            );
            out.extend(counters.iter().map(|&v| v as u8));
            out.extend(vars.iter().map(|&v| v as u8));
        }
        fx_hash_bytes(out)
    }

    /// A packed configuration adopted from an already-encoded scratch buffer
    /// and its pre-hash (as produced by [`PackedConfig::encode_into`]).
    pub fn from_encoded(bytes: &[u8], hash: u64) -> Self {
        PackedConfig {
            bytes: bytes.into(),
            hash,
        }
    }

    /// The packed bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Whether this packed snapshot describes the same state as `cfg`,
    /// compared in place — no allocation, no re-encoding of `cfg`.
    pub fn matches(&self, cfg: &Configuration) -> bool {
        let stride = cfg.num_locations() + cfg.num_vars();
        let active = cfg.max_active_round().map_or(0, |r| r as usize + 1);
        if self.bytes.len() != active * stride {
            return false;
        }
        for (round, chunk) in self.bytes.chunks_exact(stride).enumerate() {
            let round = round as u32;
            let counters = cfg.counters_slice(round).expect("active round");
            let vars = cfg.vars_slice(round).expect("active round");
            let (cb, vb) = chunk.split_at(cfg.num_locations());
            if !cb.iter().zip(counters).all(|(&b, &v)| b as u64 == v)
                || !vb.iter().zip(vars).all(|(&b, &v)| b as u64 == v)
            {
                return false;
            }
        }
        true
    }

    /// The precomputed 64-bit hash of the packed bytes.
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// Decodes back into a full configuration with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the byte length is not a multiple of the per-round size.
    pub fn decode(&self, num_locations: usize, num_vars: usize) -> Configuration {
        let mut cfg = Configuration::zero(num_locations, num_vars);
        self.decode_into(&mut cfg);
        cfg
    }

    /// Decodes into an existing configuration (cleared first), reusing its
    /// round buffers instead of allocating fresh ones.
    ///
    /// # Panics
    ///
    /// Panics if the byte length is not a multiple of the configuration's
    /// per-round size.
    pub fn decode_into(&self, cfg: &mut Configuration) {
        let (num_locations, num_vars) = (cfg.num_locations(), cfg.num_vars());
        let stride = num_locations + num_vars;
        assert!(
            stride > 0 && self.bytes.len().is_multiple_of(stride),
            "packed length {} is not a multiple of the round size {stride}",
            self.bytes.len()
        );
        cfg.clear();
        for (round, chunk) in self.bytes.chunks_exact(stride).enumerate() {
            for (l, &v) in chunk[..num_locations].iter().enumerate() {
                if v > 0 {
                    cfg.set_counter(LocId(l), round as u32, v as u64);
                }
            }
            for (x, &v) in chunk[num_locations..].iter().enumerate() {
                if v > 0 {
                    cfg.set_var(VarId(x), round as u32, v as u64);
                }
            }
        }
    }
}

impl PartialEq for PackedConfig {
    fn eq(&self, other: &Self) -> bool {
        // bytes only: the carried hash is a probe accelerator whose scheme
        // (content hash or incremental Zobrist hash) depends on the producer
        self.bytes == other.bytes
    }
}

impl Eq for PackedConfig {}

impl std::hash::Hash for PackedConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrips() {
        let mut cfg = Configuration::zero(3, 2);
        cfg.add_counter(LocId(0), 0, 2);
        cfg.add_counter(LocId(2), 1, 1);
        cfg.add_var(VarId(1), 0, 7);
        let packed = PackedConfig::encode(&cfg);
        assert_eq!(packed.bytes().len(), 2 * 5);
        let decoded = packed.decode(3, 2);
        assert_eq!(decoded, cfg);
        assert_eq!(PackedConfig::encode(&decoded), packed);
    }

    #[test]
    fn trailing_zero_rounds_are_not_encoded() {
        let mut a = Configuration::zero(2, 1);
        a.add_counter(LocId(1), 0, 1);
        let mut b = a.clone();
        b.add_counter(LocId(0), 5, 1);
        b.set_counter(LocId(0), 5, 0);
        let (pa, pb) = (PackedConfig::encode(&a), PackedConfig::encode(&b));
        assert_eq!(pa, pb);
        assert_eq!(pa.hash64(), pb.hash64());
        assert_eq!(pa.bytes().len(), 3);
    }

    #[test]
    fn empty_configuration_packs_to_empty_bytes() {
        let cfg = Configuration::zero(4, 4);
        let packed = PackedConfig::encode(&cfg);
        assert!(packed.bytes().is_empty());
        assert_eq!(packed.decode(4, 4), cfg);
    }

    #[test]
    fn encode_into_matches_encode() {
        let mut cfg = Configuration::zero(2, 2);
        cfg.add_counter(LocId(0), 0, 3);
        cfg.add_var(VarId(0), 1, 2);
        let mut scratch = vec![0xFF; 32];
        let hash = PackedConfig::encode_into(&cfg, &mut scratch);
        let packed = PackedConfig::encode(&cfg);
        assert_eq!(packed.hash64(), hash);
        assert_eq!(packed.bytes(), &scratch[..]);
        let adopted = PackedConfig::from_encoded(&scratch, hash);
        assert_eq!(adopted, packed);
    }

    #[test]
    fn matches_compares_without_encoding() {
        let mut cfg = Configuration::zero(3, 2);
        cfg.add_counter(LocId(1), 0, 2);
        cfg.add_var(VarId(0), 1, 4);
        let packed = PackedConfig::encode(&cfg);
        assert!(packed.matches(&cfg));
        // trailing zero rounds do not break matching
        let mut padded = cfg.clone();
        padded.add_counter(LocId(0), 3, 1);
        padded.set_counter(LocId(0), 3, 0);
        assert!(packed.matches(&padded));
        // a real difference is detected
        let mut other = cfg.clone();
        other.add_counter(LocId(0), 0, 1);
        assert!(!packed.matches(&other));
        let mut shorter = cfg.clone();
        shorter.set_var(VarId(0), 1, 0);
        assert!(!packed.matches(&shorter));
    }

    #[test]
    fn fx_hash_distinguishes_lengths_and_content() {
        assert_ne!(fx_hash_bytes(&[0]), fx_hash_bytes(&[0, 0]));
        assert_ne!(fx_hash_bytes(&[1, 2, 3]), fx_hash_bytes(&[3, 2, 1]));
        assert_eq!(fx_hash_bytes(&[7; 16]), fx_hash_bytes(&[7; 16]));
    }

    #[test]
    #[should_panic(expected = "too large for packed encoding")]
    fn oversized_values_are_rejected() {
        let mut cfg = Configuration::zero(1, 1);
        cfg.add_counter(LocId(0), 0, 300);
        let _ = PackedConfig::encode(&cfg);
    }
}
