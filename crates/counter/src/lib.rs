//! Extended (probabilistic) counter systems.
//!
//! This crate gives semantics to the models of [`ccta`]: a system of
//! `N(p).0` copies of the correct-process threshold automaton plus `N(p).1`
//! copies of the common-coin automaton is abstracted as a *counter system*
//! whose configurations record, per round, the number of automata in each
//! location and the value of each shared/coin variable (Sect. III-C of the
//! paper).
//!
//! The crate provides:
//!
//! * [`Configuration`] — round-indexed location counters and variable
//!   values, with O(1) mutation (trailing-zero-round trimming is deferred to
//!   the comparison/fingerprint boundaries instead of running on every
//!   update).
//! * [`PackedConfig`] — the packed byte encoding of a configuration
//!   (canonical with respect to trailing zero rounds), carrying a
//!   precomputed 64-bit pre-hash; full configurations are decoded back on
//!   demand (e.g. for counterexample reconstruction).
//! * [`CounterSystem`] — applicability, the `apply` function and the
//!   probabilistic transition function `∆` for a concrete admissible
//!   parameter valuation.  Rules are precompiled at construction (branch
//!   lists, variable increments, guard bounds evaluated at the valuation),
//!   and the exploration fast path ([`CounterSystem::expand_action`],
//!   [`CounterSystem::progress_actions_into`], [`Expander`]) generates
//!   successors by applying and undoing counter deltas in place — no
//!   `Configuration` clone per branch, no `round_vars` clone per guard.
//! * [`RowEngine`] — the single-round specialisation the explicit checker
//!   actually runs on: a state is one fixed-stride byte row
//!   (`locations ++ variables`), successor generation applies byte deltas
//!   in place, guards evaluate straight off the row, and a tabulated
//!   Zobrist hash ([`CounterSystem::state_hash`]) is maintained
//!   incrementally in O(1) per delta.  The hot loop of the checker performs
//!   no allocation per transition.
//! * [`Schedule`] / [`Path`] — finite schedules and paths, round-rigidity,
//!   and the Theorem-1 reordering of arbitrary schedules into round-rigid
//!   ones.
//! * [`adversary`] — adversaries resolving the non-determinism, including
//!   round-rigid adversaries, and a runner that samples paths of the induced
//!   Markov chain.

pub mod adversary;
pub mod config;
pub mod error;
pub mod packed;
pub mod schedule;
pub mod system;

/// Small models shared by this crate's unit tests and the engine-equivalence
/// integration tests of `ccchecker`.  Not part of the public API surface.
#[doc(hidden)]
pub mod testutil;

pub use adversary::{Adversary, EagerAdversary, RandomAdversary, RoundRigid, RunOutcome};
pub use config::Configuration;
pub use error::CounterError;
pub use packed::PackedConfig;
pub use schedule::{Path, Schedule, ScheduledStep};
pub use system::{decode_row, Action, CounterSystem, Expander, RowEngine};
