//! Extended (probabilistic) counter systems.
//!
//! This crate gives semantics to the models of [`ccta`]: a system of
//! `N(p).0` copies of the correct-process threshold automaton plus `N(p).1`
//! copies of the common-coin automaton is abstracted as a *counter system*
//! whose configurations record, per round, the number of automata in each
//! location and the value of each shared/coin variable (Sect. III-C of the
//! paper).
//!
//! The crate provides:
//!
//! * [`Configuration`] — round-indexed location counters and variable values.
//! * [`CounterSystem`] — applicability, the `apply` function and the
//!   probabilistic transition function `∆` for a concrete admissible
//!   parameter valuation.
//! * [`Schedule`] / [`Path`] — finite schedules and paths, round-rigidity,
//!   and the Theorem-1 reordering of arbitrary schedules into round-rigid
//!   ones.
//! * [`adversary`] — adversaries resolving the non-determinism, including
//!   round-rigid adversaries, and a runner that samples paths of the induced
//!   Markov chain.

pub mod adversary;
pub mod config;
pub mod error;
pub mod schedule;
pub mod system;

#[cfg(test)]
pub(crate) mod testutil;

pub use adversary::{Adversary, EagerAdversary, RandomAdversary, RoundRigid, RunOutcome};
pub use config::Configuration;
pub use error::CounterError;
pub use schedule::{Path, Schedule, ScheduledStep};
pub use system::{Action, CounterSystem};
