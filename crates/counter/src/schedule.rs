//! Schedules, paths, round-rigidity and the Theorem-1 reordering.

use crate::config::Configuration;
use crate::error::CounterError;
use crate::system::{Action, CounterSystem};
use std::fmt;

/// One step of a schedule: an action plus the chosen probabilistic outcome.
/// For Dirac rules the branch is always 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduledStep {
    /// The action `(rule, round)`.
    pub action: Action,
    /// The branch of the rule's distribution that was taken.
    pub branch: usize,
}

impl ScheduledStep {
    /// A step taking the (only) branch of a Dirac rule.
    pub fn dirac(action: Action) -> Self {
        ScheduledStep { action, branch: 0 }
    }

    /// A step taking an explicit branch.
    pub fn with_branch(action: Action, branch: usize) -> Self {
        ScheduledStep { action, branch }
    }
}

impl fmt::Display for ScheduledStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.branch == 0 {
            write!(f, "{}", self.action)
        } else {
            write!(f, "{}#{}", self.action, self.branch)
        }
    }
}

/// A finite schedule `τ = t₁, t₂, …`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    steps: Vec<ScheduledStep>,
}

impl Schedule {
    /// The empty schedule.
    pub fn new() -> Self {
        Schedule { steps: Vec::new() }
    }

    /// A schedule from explicit steps.
    pub fn from_steps(steps: Vec<ScheduledStep>) -> Self {
        Schedule { steps }
    }

    /// A schedule of Dirac actions.
    pub fn from_actions(actions: impl IntoIterator<Item = Action>) -> Self {
        Schedule {
            steps: actions.into_iter().map(ScheduledStep::dirac).collect(),
        }
    }

    /// Appends a step.
    pub fn push(&mut self, step: ScheduledStep) {
        self.steps.push(step);
    }

    /// The steps of the schedule.
    pub fn steps(&self) -> &[ScheduledStep] {
        &self.steps
    }

    /// Length of the schedule.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// A schedule is *round-rigid* if its actions are ordered by
    /// non-decreasing round numbers (it is a concatenation `s₀·s₁·s₂⋯` where
    /// `s_k` only contains round-`k` actions).
    pub fn is_round_rigid(&self) -> bool {
        self.steps
            .windows(2)
            .all(|w| w[0].action.round <= w[1].action.round)
    }

    /// Reorders the schedule into a round-rigid one by a stable sort on the
    /// round number (the reordering underlying Theorem 1).  The relative
    /// order of actions within the same round is preserved.
    pub fn round_rigid_reordering(&self) -> Schedule {
        let mut steps = self.steps.clone();
        steps.sort_by_key(|s| s.action.round);
        Schedule { steps }
    }

    /// Whether the schedule is applicable to `cfg` in the given system.
    pub fn is_applicable(&self, sys: &CounterSystem, cfg: &Configuration) -> bool {
        self.apply(sys, cfg).is_ok()
    }

    /// Applies the schedule, producing the full path.
    ///
    /// # Errors
    ///
    /// Returns [`CounterError::ScheduleNotApplicable`] with the offending
    /// position if some step is not applicable.
    pub fn apply(&self, sys: &CounterSystem, cfg: &Configuration) -> Result<Path, CounterError> {
        let mut configs = vec![cfg.clone()];
        let mut current = cfg.clone();
        for (i, step) in self.steps.iter().enumerate() {
            current = sys
                .apply(&current, step.action, step.branch)
                .map_err(|_| CounterError::ScheduleNotApplicable { position: i })?;
            configs.push(current.clone());
        }
        Ok(Path {
            steps: self.steps.clone(),
            configs,
        })
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

/// A finite path `path(c₀, τ) = c₀, t₁, c₁, …, t_{|τ|}, c_{|τ|}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    steps: Vec<ScheduledStep>,
    configs: Vec<Configuration>,
}

impl Path {
    /// A path consisting of just an initial configuration.
    pub fn initial(cfg: Configuration) -> Self {
        Path {
            steps: Vec::new(),
            configs: vec![cfg],
        }
    }

    /// The steps taken along the path.
    pub fn steps(&self) -> &[ScheduledStep] {
        &self.steps
    }

    /// All configurations visited, starting with the initial one.
    pub fn configs(&self) -> &[Configuration] {
        &self.configs
    }

    /// The first configuration.
    pub fn first(&self) -> &Configuration {
        &self.configs[0]
    }

    /// The last configuration.
    pub fn last(&self) -> &Configuration {
        self.configs.last().expect("paths are never empty")
    }

    /// Number of steps taken.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Extends the path in place with one applied step.
    pub fn extend(&mut self, step: ScheduledStep, config: Configuration) {
        self.steps.push(step);
        self.configs.push(config);
    }

    /// The schedule of this path.
    pub fn schedule(&self) -> Schedule {
        Schedule::from_steps(self.steps.clone())
    }

    /// Whether some visited configuration satisfies the predicate.
    pub fn visits(&self, mut pred: impl FnMut(&Configuration) -> bool) -> bool {
        self.configs.iter().any(&mut pred)
    }

    /// Whether every visited configuration satisfies the predicate.
    pub fn always(&self, mut pred: impl FnMut(&Configuration) -> bool) -> bool {
        self.configs.iter().all(&mut pred)
    }
}

/// Reorders a finite schedule applicable to `cfg` into a round-rigid schedule
/// that is also applicable to `cfg` and reaches the same configuration
/// (Theorem 1).
///
/// # Errors
///
/// Returns an error if the input schedule itself is not applicable to `cfg`.
pub fn reorder_round_rigid(
    sys: &CounterSystem,
    cfg: &Configuration,
    schedule: &Schedule,
) -> Result<Schedule, CounterError> {
    // verify applicability of the original schedule first
    schedule.apply(sys, cfg)?;
    Ok(schedule.round_rigid_reordering())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{small_params, voting_model};
    use ccta::RuleId;

    fn system() -> CounterSystem {
        CounterSystem::new(voting_model(), small_params()).unwrap()
    }

    /// A two-round schedule for one process: it broadcasts, adopts the coin
    /// value and switches to round 1, then starts round 1, while the coin
    /// automaton publishes its value in round 0.
    fn two_round_schedule(sys: &CounterSystem) -> (Configuration, Schedule) {
        let model = sys.model().clone();
        let rid = |name: &str| model.rule_id(name).unwrap();
        let start_of = |loc: &str| -> RuleId {
            let loc_id = model.location_id(loc).unwrap();
            model
                .rule_ids()
                .find(|&r| model.rule(r).from() == loc_id && !model.rule(r).is_round_switch())
                .unwrap()
        };
        let switch_of = |loc: &str| -> RuleId {
            let loc_id = model.location_id(loc).unwrap();
            model
                .rule_ids()
                .find(|&r| model.rule(r).from() == loc_id && model.rule(r).is_round_switch())
                .unwrap()
        };

        let mut cfg = sys.empty_configuration();
        cfg.add_counter(model.location_id("J0").unwrap(), 0, 3);
        cfg.add_counter(model.location_id("JC").unwrap(), 0, 1);

        let steps = vec![
            // coin automaton: JC -> IC -> H0 -> C0 (publishes cc0)
            ScheduledStep::dirac(Action::new(start_of("JC"), 0)),
            ScheduledStep::with_branch(Action::new(rid("toss"), 0), 0),
            ScheduledStep::dirac(Action::new(rid("publish0"), 0)),
            // one process: J0 -> I0 -> S -> E0 (via coin) -> J0 of round 1 -> I0
            ScheduledStep::dirac(Action::new(start_of("J0"), 0)),
            ScheduledStep::dirac(Action::new(rid("bcast0"), 0)),
            ScheduledStep::dirac(Action::new(rid("coin0"), 0)),
            ScheduledStep::dirac(Action::new(switch_of("E0"), 0)),
            ScheduledStep::dirac(Action::new(start_of("J0"), 1)),
        ];
        (cfg, Schedule::from_steps(steps))
    }

    #[test]
    fn schedule_application_produces_path() {
        let sys = system();
        let (cfg, sched) = two_round_schedule(&sys);
        let path = sched.apply(&sys, &cfg).unwrap();
        assert_eq!(path.len(), 8);
        assert_eq!(path.configs().len(), 9);
        assert_eq!(path.first(), &cfg);
        let model = sys.model();
        let i0 = model.location_id("I0").unwrap();
        assert_eq!(path.last().counter(i0, 1), 1);
        assert!(path.visits(|c| c.counter(model.location_id("E0").unwrap(), 0) > 0));
        assert!(path.always(|c| c.counter(model.location_id("E1").unwrap(), 0) == 0));
        assert!(sched.is_applicable(&sys, &cfg));
    }

    #[test]
    fn inapplicable_schedule_reports_position() {
        let sys = system();
        let model = sys.model().clone();
        let cfg = sys.empty_configuration();
        let sched = Schedule::from_actions(vec![Action::new(model.rule_id("bcast0").unwrap(), 0)]);
        let err = sched.apply(&sys, &cfg).unwrap_err();
        assert_eq!(err, CounterError::ScheduleNotApplicable { position: 0 });
        assert!(!sched.is_applicable(&sys, &cfg));
    }

    #[test]
    fn round_rigidity_detection() {
        let sys = system();
        let (_cfg, sched) = two_round_schedule(&sys);
        assert!(sched.is_round_rigid());
        // build a non-round-rigid schedule by swapping the last two steps
        let mut steps = sched.steps().to_vec();
        steps.swap(6, 7);
        let mixed = Schedule::from_steps(steps);
        assert!(!mixed.is_round_rigid());
        assert!(mixed.round_rigid_reordering().is_round_rigid());
    }

    #[test]
    fn theorem_1_reordering_preserves_final_configuration() {
        let sys = system();
        let model = sys.model().clone();
        let (cfg, sched) = two_round_schedule(&sys);
        // After the first process has already advanced into round 1, let a
        // *second* process perform its round-0 steps: the resulting schedule
        // is applicable but not round-rigid.
        let j0 = model.location_id("J0").unwrap();
        let start_j0 = model
            .rule_ids()
            .find(|&r| model.rule(r).from() == j0 && !model.rule(r).is_round_switch())
            .unwrap();
        let bcast0 = model.rule_id("bcast0").unwrap();
        let mut steps = sched.steps().to_vec();
        steps.push(ScheduledStep::dirac(Action::new(start_j0, 0)));
        steps.push(ScheduledStep::dirac(Action::new(bcast0, 0)));
        let interleaved = Schedule::from_steps(steps);
        assert!(!interleaved.is_round_rigid());
        let original_final = interleaved.apply(&sys, &cfg).unwrap().last().clone();

        let rigid = reorder_round_rigid(&sys, &cfg, &interleaved).unwrap();
        assert!(rigid.is_round_rigid());
        let rigid_path = rigid.apply(&sys, &cfg).unwrap();
        assert_eq!(rigid_path.last(), &original_final);
    }

    #[test]
    fn reordering_rejects_inapplicable_schedules() {
        let sys = system();
        let cfg = sys.empty_configuration();
        let sched =
            Schedule::from_actions(vec![Action::new(sys.model().rule_id("bcast0").unwrap(), 0)]);
        assert!(reorder_round_rigid(&sys, &cfg, &sched).is_err());
    }

    #[test]
    fn display_formats() {
        let sched = Schedule::from_steps(vec![
            ScheduledStep::dirac(Action::new(RuleId(1), 0)),
            ScheduledStep::with_branch(Action::new(RuleId(2), 1), 1),
        ]);
        let s = format!("{sched}");
        assert!(s.contains("r1"));
        assert!(s.contains("#1"));
        assert_eq!(sched.len(), 2);
        assert!(!sched.is_empty());
        assert!(Schedule::new().is_empty());
    }

    #[test]
    fn path_initial_and_extend() {
        let sys = system();
        let cfg = sys.empty_configuration();
        let mut path = Path::initial(cfg.clone());
        assert!(path.is_empty());
        assert_eq!(path.last(), &cfg);
        let model = sys.model().clone();
        let mut cfg2 = cfg.clone();
        cfg2.add_counter(model.location_id("I0").unwrap(), 0, 1);
        path.extend(
            ScheduledStep::dirac(Action::new(RuleId(0), 0)),
            cfg2.clone(),
        );
        assert_eq!(path.len(), 1);
        assert_eq!(path.last(), &cfg2);
        assert_eq!(path.schedule().len(), 1);
    }
}
