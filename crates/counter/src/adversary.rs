//! Adversaries resolving the non-determinism of the counter system.
//!
//! An adversary is a function from finite path prefixes to applicable actions
//! (Sect. III-E of the paper).  Together with an initial configuration it
//! induces a Markov chain; the runner in this module samples paths of that
//! chain by resolving probabilistic branches with an RNG.

use crate::config::Configuration;
use crate::schedule::{Path, ScheduledStep};
use crate::system::{Action, CounterSystem};
use rand::Rng;

/// An adversary selects the next action given the path so far.
pub trait Adversary {
    /// Chooses an applicable action, or `None` to stop (only sensible when
    /// the last configuration is terminal).
    fn select(&mut self, sys: &CounterSystem, path: &Path) -> Option<Action>;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "adversary"
    }
}

/// Picks the first applicable progress action in rule order.  Deterministic
/// and round-rigid on single-round systems; on multi-round systems it always
/// prefers the lowest active round, so it is round-rigid there as well.
#[derive(Debug, Default, Clone)]
pub struct EagerAdversary;

impl Adversary for EagerAdversary {
    fn select(&mut self, sys: &CounterSystem, path: &Path) -> Option<Action> {
        let mut actions = sys.progress_actions(path.last());
        actions.sort_by_key(|a| (a.round, a.rule.0));
        actions.into_iter().next()
    }

    fn name(&self) -> &str {
        "eager"
    }
}

/// Picks a uniformly random applicable progress action.
#[derive(Debug, Clone)]
pub struct RandomAdversary<R: Rng> {
    rng: R,
}

impl<R: Rng> RandomAdversary<R> {
    /// Creates a random adversary from an RNG.
    pub fn new(rng: R) -> Self {
        RandomAdversary { rng }
    }
}

impl<R: Rng> Adversary for RandomAdversary<R> {
    fn select(&mut self, sys: &CounterSystem, path: &Path) -> Option<Action> {
        let actions = sys.progress_actions(path.last());
        if actions.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..actions.len());
        Some(actions[idx])
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Restricts an inner adversary to round-rigid behaviour: only actions of the
/// lowest active round that still has applicable progress actions may be
/// chosen.
#[derive(Debug, Clone)]
pub struct RoundRigid<A> {
    inner: A,
}

impl<A> RoundRigid<A> {
    /// Wraps an adversary.
    pub fn new(inner: A) -> Self {
        RoundRigid { inner }
    }
}

impl<A: Adversary> Adversary for RoundRigid<A> {
    fn select(&mut self, sys: &CounterSystem, path: &Path) -> Option<Action> {
        let candidate = self.inner.select(sys, path)?;
        let lowest_round = sys
            .progress_actions(path.last())
            .iter()
            .map(|a| a.round)
            .min()?;
        if candidate.round == lowest_round {
            Some(candidate)
        } else {
            // replace by some action of the lowest round
            sys.progress_actions(path.last())
                .into_iter()
                .find(|a| a.round == lowest_round)
        }
    }

    fn name(&self) -> &str {
        "round-rigid"
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The adversary stopped because the configuration was terminal.
    Terminal,
    /// The step bound was exhausted before reaching a terminal configuration.
    StepBound,
    /// The adversary declined to pick an action in a non-terminal state
    /// (an unfair adversary).
    AdversaryStopped,
}

/// Samples one path of the Markov chain induced by `adversary` from the
/// initial configuration, resolving probabilistic branches with `rng`.
pub fn run_adversary<A: Adversary, R: Rng>(
    sys: &CounterSystem,
    initial: Configuration,
    adversary: &mut A,
    rng: &mut R,
    max_steps: usize,
) -> (Path, RunOutcome) {
    let mut path = Path::initial(initial);
    for _ in 0..max_steps {
        if sys.is_terminal(path.last()) {
            return (path, RunOutcome::Terminal);
        }
        let Some(action) = adversary.select(sys, &path) else {
            return (path, RunOutcome::AdversaryStopped);
        };
        let branch = sample_branch(sys, action, rng);
        let next = sys
            .apply(path.last(), action, branch)
            .expect("adversaries must return applicable actions");
        path.extend(ScheduledStep::with_branch(action, branch), next);
    }
    let outcome = if sys.is_terminal(path.last()) {
        RunOutcome::Terminal
    } else {
        RunOutcome::StepBound
    };
    (path, outcome)
}

/// Samples a branch index of the rule of `action` according to its
/// probability distribution.
fn sample_branch<R: Rng>(sys: &CounterSystem, action: Action, rng: &mut R) -> usize {
    let branches = sys.model().rule(action.rule).branches();
    if branches.len() == 1 {
        return 0;
    }
    // sample with exact rational weights over a common denominator
    let denom: u64 = branches
        .iter()
        .map(|b| b.prob.denominator())
        .fold(1, num_lcm);
    let weights: Vec<u64> = branches
        .iter()
        .map(|b| b.prob.numerator() * (denom / b.prob.denominator()))
        .collect();
    let total: u64 = weights.iter().sum();
    let mut draw = rng.gen_range(0..total);
    for (i, w) in weights.iter().enumerate() {
        if draw < *w {
            return i;
        }
        draw -= w;
    }
    branches.len() - 1
}

fn num_gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        num_gcd(b, a % b)
    }
}

fn num_lcm(a: u64, b: u64) -> u64 {
    a / num_gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{small_params, voting_model};
    use ccta::BinValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn single_round_system() -> CounterSystem {
        let rd = voting_model().single_round().unwrap();
        CounterSystem::new(rd, small_params()).unwrap()
    }

    #[test]
    fn eager_adversary_terminates_single_round_runs() {
        let sys = single_round_system();
        let mut rng = StdRng::seed_from_u64(1);
        for init in sys.round_start_configurations() {
            let mut adv = EagerAdversary;
            let (path, outcome) = run_adversary(&sys, init, &mut adv, &mut rng, 200);
            assert_eq!(outcome, RunOutcome::Terminal);
            assert!(sys.is_terminal(path.last()));
            // 3 processes + 1 coin all end up in border copies or final locations
            assert_eq!(path.last().total_in_round(0), 4);
        }
    }

    #[test]
    fn random_adversary_is_fair_up_to_termination() {
        let sys = single_round_system();
        let mut rng = StdRng::seed_from_u64(7);
        let init = sys.unanimous_start_configurations(BinValue::Zero)[0].clone();
        for seed in 0..10u64 {
            let mut adv = RandomAdversary::new(StdRng::seed_from_u64(seed));
            let (path, outcome) = run_adversary(&sys, init.clone(), &mut adv, &mut rng, 500);
            assert_eq!(outcome, RunOutcome::Terminal);
            // with a unanimous 0 start, E1 is only reachable through the
            // coin rule, i.e. after cc1 has been published
            let e1 = sys.model().location_id("E1").unwrap();
            let cc1 = sys.model().var_id("cc1").unwrap();
            assert!(path.always(|c| c.counter(e1, 0) == 0 || c.var(cc1, 0) >= 1));
            // the majority-1 rule can never fire: v1 stays zero
            let v1 = sys.model().var_id("v1").unwrap();
            assert!(path.always(|c| c.var(v1, 0) == 0));
        }
    }

    #[test]
    fn round_rigid_wrapper_prefers_lowest_round() {
        let sys = CounterSystem::new(voting_model(), small_params()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let init = sys.round_start_configurations()[0].clone();
        let mut adv = RoundRigid::new(RandomAdversary::new(StdRng::seed_from_u64(11)));
        let (path, _) = run_adversary(&sys, init, &mut adv, &mut rng, 60);
        assert!(path.schedule().is_round_rigid());
        assert_eq!(adv.name(), "round-rigid");
    }

    #[test]
    fn multi_round_run_progresses_through_rounds() {
        let sys = CounterSystem::new(voting_model(), small_params()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let init = sys.round_start_configurations()[0].clone();
        let mut adv = EagerAdversary;
        let (path, outcome) = run_adversary(&sys, init, &mut adv, &mut rng, 300);
        // the multi-round system never terminates; the run hits the bound
        assert_eq!(outcome, RunOutcome::StepBound);
        assert!(path.last().max_active_round().unwrap_or(0) >= 1);
        assert_eq!(adv.name(), "eager");
    }

    #[test]
    fn branch_sampling_is_roughly_fair() {
        let sys = CounterSystem::new(voting_model(), small_params()).unwrap();
        let toss = sys.model().rule_id("toss").unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            counts[sample_branch(&sys, Action::new(toss, 0), &mut rng)] += 1;
        }
        assert!(counts[0] > 800 && counts[1] > 800, "counts={counts:?}");
    }

    #[test]
    fn stopping_adversary_reports_stopped() {
        struct Stopper;
        impl Adversary for Stopper {
            fn select(&mut self, _sys: &CounterSystem, _path: &Path) -> Option<Action> {
                None
            }
        }
        let sys = single_round_system();
        let init = sys.round_start_configurations()[0].clone();
        let mut rng = StdRng::seed_from_u64(0);
        let (_path, outcome) = run_adversary(&sys, init, &mut Stopper, &mut rng, 10);
        assert_eq!(outcome, RunOutcome::AdversaryStopped);
        assert_eq!(Stopper.name(), "adversary");
    }
}
