//! Shared test model used by the unit tests of this crate.
//!
//! The model is a small common-coin voting protocol: each correct process
//! broadcasts its value, waits for a quorum of `n - t` messages of a single
//! value, and otherwise adopts the common-coin value.  The coin automaton
//! tosses a fair coin and publishes the outcome through `cc0` / `cc1`.

use ccta::prelude::*;

/// Builds the multi-round test model.
pub fn voting_model() -> SystemModel {
    let env = ccta::env::byzantine_common_coin_env(3);
    let k = env.num_params();
    let n = env.param_id("n").unwrap();
    let t = env.param_id("t").unwrap();
    let f = env.param_id("f").unwrap();
    let mut b = SystemBuilder::new("test-voting", env);
    let v0 = b.shared_var("v0");
    let v1 = b.shared_var("v1");
    let cc0 = b.coin_var("cc0");
    let cc1 = b.coin_var("cc1");

    let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
    let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
    let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
    let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
    let s = b.process_location("S", LocClass::Intermediate, None);
    let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
    let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));

    b.start_rule(j0, i0);
    b.start_rule(j1, i1);
    b.rule("bcast0", i0, s, Guard::top(), Update::increment(v0));
    b.rule("bcast1", i1, s, Guard::top(), Update::increment(v1));
    let quorum = LinearExpr::param(k, n)
        .sub(&LinearExpr::param(k, t))
        .sub(&LinearExpr::param(k, f));
    b.rule("maj0", s, e0, Guard::ge(v0, quorum.clone()), Update::none());
    b.rule("maj1", s, e1, Guard::ge(v1, quorum), Update::none());
    b.rule(
        "coin0",
        s,
        e0,
        Guard::ge(cc0, LinearExpr::constant(k, 1)),
        Update::none(),
    );
    b.rule(
        "coin1",
        s,
        e1,
        Guard::ge(cc1, LinearExpr::constant(k, 1)),
        Update::none(),
    );
    b.round_switch(e0, j0);
    b.round_switch(e1, j1);

    let jc = b.coin_location("JC", LocClass::Border, None);
    let ic = b.coin_location("IC", LocClass::Initial, None);
    let h0 = b.coin_location("H0", LocClass::Intermediate, None);
    let h1 = b.coin_location("H1", LocClass::Intermediate, None);
    let c0 = b.coin_location("C0", LocClass::Final, Some(BinValue::Zero));
    let c1 = b.coin_location("C1", LocClass::Final, Some(BinValue::One));
    b.start_rule(jc, ic);
    b.coin_toss(
        "toss",
        ic,
        vec![(h0, Probability::HALF), (h1, Probability::HALF)],
        Guard::top(),
        Update::none(),
    );
    b.rule("publish0", h0, c0, Guard::top(), Update::increment(cc0));
    b.rule("publish1", h1, c1, Guard::top(), Update::increment(cc1));
    b.round_switch(c0, jc);
    b.round_switch(c1, jc);

    b.build().expect("test voting model must validate")
}

/// The standard small admissible valuation `n = 4, t = 1, f = 1, cc = 1`.
pub fn small_params() -> ParamValuation {
    ParamValuation::new(vec![4, 1, 1, 1])
}
