//! Configurations of the (multi-round) counter system.
//!
//! A configuration `c = (κ, g, p)` records the location counters `κ[ℓ, k]`
//! and variable values `g[x, k]` for every round `k`, plus the parameter
//! values `p` (stored once in the [`crate::CounterSystem`], not per
//! configuration).
//!
//! # Performance notes
//!
//! Counter and variable updates are O(1): trailing all-zero rounds are *not*
//! trimmed eagerly on every mutation (that would make each update O(rounds)).
//! Instead, equality, hashing and the packed fingerprints ignore trailing
//! all-zero rounds, so two configurations describing the same state still
//! compare (and hash) equal regardless of which rounds happen to be
//! materialised.  The hot exploration path additionally mutates
//! configurations in place through the delta API of
//! [`crate::CounterSystem::expand_action`] instead of cloning per successor.

use ccta::{LocId, VarId};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Counters and variable values of a single round.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RoundData {
    counters: Vec<u64>,
    vars: Vec<u64>,
}

impl RoundData {
    fn zero(num_locations: usize, num_vars: usize) -> Self {
        RoundData {
            counters: vec![0; num_locations],
            vars: vec![0; num_vars],
        }
    }

    fn is_zero(&self) -> bool {
        self.counters.iter().all(|&c| c == 0) && self.vars.iter().all(|&v| v == 0)
    }

    /// Location counters of this round.
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// Variable values of this round.
    pub fn vars(&self) -> &[u64] {
        &self.vars
    }
}

/// A configuration of the counter system.
///
/// Rounds are materialised lazily: reads of rounds that were never touched
/// return zeros, and trailing all-zero rounds are ignored by equality,
/// hashing and fingerprints, so that two configurations describing the same
/// state compare (and hash) equal.
#[derive(Debug, Clone)]
pub struct Configuration {
    num_locations: usize,
    num_vars: usize,
    rounds: Vec<RoundData>,
}

impl Configuration {
    /// The all-zero configuration for a model with the given numbers of
    /// locations and variables.
    pub fn zero(num_locations: usize, num_vars: usize) -> Self {
        Configuration {
            num_locations,
            num_vars,
            rounds: Vec::new(),
        }
    }

    /// Number of locations per round.
    pub fn num_locations(&self) -> usize {
        self.num_locations
    }

    /// Number of variables per round.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of materialised rounds that are part of the observable state:
    /// the length of the prefix up to the last round with any non-zero
    /// counter or variable.
    pub(crate) fn active_len(&self) -> usize {
        let mut len = self.rounds.len();
        while len > 0 && self.rounds[len - 1].is_zero() {
            len -= 1;
        }
        len
    }

    /// The counter `κ[loc, round]`.
    pub fn counter(&self, loc: LocId, round: u32) -> u64 {
        self.rounds
            .get(round as usize)
            .map(|r| r.counters[loc.0])
            .unwrap_or(0)
    }

    /// The variable value `g[var, round]`.
    pub fn var(&self, var: VarId, round: u32) -> u64 {
        self.rounds
            .get(round as usize)
            .map(|r| r.vars[var.0])
            .unwrap_or(0)
    }

    /// All variable values of a round as a borrowed slice, or `None` if the
    /// round was never materialised (all values are zero then).
    pub fn vars_slice(&self, round: u32) -> Option<&[u64]> {
        self.rounds.get(round as usize).map(|r| r.vars.as_slice())
    }

    /// All location counters of a round as a borrowed slice, or `None` if
    /// the round was never materialised.
    pub fn counters_slice(&self, round: u32) -> Option<&[u64]> {
        self.rounds
            .get(round as usize)
            .map(|r| r.counters.as_slice())
    }

    /// All variable values of a round (zeros if the round was never touched).
    pub fn round_vars(&self, round: u32) -> Vec<u64> {
        self.rounds
            .get(round as usize)
            .map(|r| r.vars.clone())
            .unwrap_or_else(|| vec![0; self.num_vars])
    }

    /// All location counters of a round.
    pub fn round_counters(&self, round: u32) -> Vec<u64> {
        self.rounds
            .get(round as usize)
            .map(|r| r.counters.clone())
            .unwrap_or_else(|| vec![0; self.num_locations])
    }

    /// The largest round index with a non-zero counter or variable, if any.
    pub fn max_active_round(&self) -> Option<u32> {
        match self.active_len() {
            0 => None,
            n => Some(n as u32 - 1),
        }
    }

    /// Sum of the location counters over a set of locations in a round.
    pub fn count_in(&self, locs: &[LocId], round: u32) -> u64 {
        locs.iter().map(|&l| self.counter(l, round)).sum()
    }

    /// Total number of automaton copies present in a round (all locations).
    pub fn total_in_round(&self, round: u32) -> u64 {
        self.rounds
            .get(round as usize)
            .map(|r| r.counters.iter().sum())
            .unwrap_or(0)
    }

    fn ensure_round(&mut self, round: u32) -> &mut RoundData {
        while self.rounds.len() <= round as usize {
            self.rounds
                .push(RoundData::zero(self.num_locations, self.num_vars));
        }
        &mut self.rounds[round as usize]
    }

    /// Drops trailing all-zero rounds.  Only needed before handing the
    /// configuration to code that inspects `rounds` directly; the public
    /// observers already ignore trailing zeros.
    pub fn trim(&mut self) {
        let len = self.active_len();
        self.rounds.truncate(len);
    }

    /// Zeroes every materialised round in place, keeping the round buffers
    /// allocated.  The result is observably equal to
    /// [`Configuration::zero`].
    pub fn clear(&mut self) {
        for r in &mut self.rounds {
            r.counters.fill(0);
            r.vars.fill(0);
        }
    }

    /// Sets the counter `κ[loc, round]`.
    pub fn set_counter(&mut self, loc: LocId, round: u32, value: u64) {
        self.ensure_round(round).counters[loc.0] = value;
    }

    /// Adds `delta` to the counter `κ[loc, round]`.
    pub fn add_counter(&mut self, loc: LocId, round: u32, delta: u64) {
        self.ensure_round(round).counters[loc.0] += delta;
    }

    /// Decreases the counter `κ[loc, round]` by one.
    ///
    /// # Panics
    ///
    /// Panics if the counter is already zero.
    pub fn decrement_counter(&mut self, loc: LocId, round: u32) {
        let data = self.ensure_round(round);
        assert!(
            data.counters[loc.0] > 0,
            "counter underflow at location {loc} round {round}"
        );
        data.counters[loc.0] -= 1;
    }

    /// Decreases the counter `κ[loc, round]` by one without the underflow
    /// check.  Used by the delta-application fast path of the expander, which
    /// only fires actions whose applicability was already established.
    pub(crate) fn decrement_counter_unchecked(&mut self, loc: LocId, round: u32) {
        let data = self.ensure_round(round);
        debug_assert!(data.counters[loc.0] > 0, "counter underflow at {loc}");
        data.counters[loc.0] -= 1;
    }

    /// Subtracts `delta` from the variable `g[var, round]` (undo of an
    /// update increment).
    pub(crate) fn sub_var_unchecked(&mut self, var: VarId, round: u32, delta: u64) {
        let data = self.ensure_round(round);
        debug_assert!(data.vars[var.0] >= delta, "variable underflow at {var}");
        data.vars[var.0] -= delta;
    }

    /// Sets the variable `g[var, round]`.
    pub fn set_var(&mut self, var: VarId, round: u32, value: u64) {
        self.ensure_round(round).vars[var.0] = value;
    }

    /// Adds `delta` to the variable `g[var, round]`.
    pub fn add_var(&mut self, var: VarId, round: u32, delta: u64) {
        self.ensure_round(round).vars[var.0] += delta;
    }

    /// A compact fingerprint suitable as a hash-map key in explicit-state
    /// search (flattens all active rounds into one vector).
    pub fn fingerprint(&self) -> Vec<u64> {
        let active = self.active_len();
        let mut out = Vec::with_capacity(active * (self.num_locations + self.num_vars));
        for r in &self.rounds[..active] {
            out.extend_from_slice(&r.counters);
            out.extend_from_slice(&r.vars);
        }
        out
    }

    /// A memory-compact byte fingerprint for explicit-state search.
    ///
    /// # Panics
    ///
    /// Panics if any counter or variable exceeds 255 — explicit-state
    /// checking is only intended for small concrete parameter valuations.
    pub fn fingerprint_bytes(&self) -> Vec<u8> {
        let active = self.active_len();
        let mut out = Vec::with_capacity(active * (self.num_locations + self.num_vars));
        for r in &self.rounds[..active] {
            for &c in r.counters.iter().chain(r.vars.iter()) {
                assert!(
                    c <= u8::MAX as u64,
                    "configuration value {c} too large for compact fingerprint"
                );
                out.push(c as u8);
            }
        }
        out
    }
}

impl PartialEq for Configuration {
    fn eq(&self, other: &Self) -> bool {
        self.num_locations == other.num_locations && self.num_vars == other.num_vars && {
            let (a, b) = (self.active_len(), other.active_len());
            a == b && self.rounds[..a] == other.rounds[..b]
        }
    }
}

impl Eq for Configuration {}

impl Hash for Configuration {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let active = self.active_len();
        self.num_locations.hash(state);
        self.num_vars.hash(state);
        active.hash(state);
        self.rounds[..active].hash(state);
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let active = self.active_len();
        if active == 0 {
            return f.write_str("<empty>");
        }
        for (k, r) in self.rounds[..active].iter().enumerate() {
            if k > 0 {
                writeln!(f)?;
            }
            write!(f, "round {k}: kappa={:?} g={:?}", r.counters, r.vars)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(c: &Configuration) -> u64 {
        let mut h = DefaultHasher::new();
        c.hash(&mut h);
        h.finish()
    }

    #[test]
    fn zero_configuration_reads_zeros_everywhere() {
        let c = Configuration::zero(5, 3);
        assert_eq!(c.counter(LocId(4), 7), 0);
        assert_eq!(c.var(VarId(2), 0), 0);
        assert_eq!(c.max_active_round(), None);
        assert_eq!(c.total_in_round(3), 0);
        assert_eq!(c.round_vars(2), vec![0, 0, 0]);
        assert_eq!(c.round_counters(2), vec![0; 5]);
        assert_eq!(format!("{c}"), "<empty>");
    }

    #[test]
    fn counters_and_vars_are_round_indexed() {
        let mut c = Configuration::zero(3, 2);
        c.add_counter(LocId(1), 0, 2);
        c.add_counter(LocId(2), 1, 1);
        c.add_var(VarId(0), 1, 5);
        assert_eq!(c.counter(LocId(1), 0), 2);
        assert_eq!(c.counter(LocId(1), 1), 0);
        assert_eq!(c.counter(LocId(2), 1), 1);
        assert_eq!(c.var(VarId(0), 1), 5);
        assert_eq!(c.var(VarId(0), 0), 0);
        assert_eq!(c.max_active_round(), Some(1));
        assert_eq!(c.total_in_round(0), 2);
        assert_eq!(c.count_in(&[LocId(1), LocId(2)], 0), 2);
    }

    #[test]
    fn trailing_zero_rounds_do_not_affect_equality() {
        let mut a = Configuration::zero(2, 1);
        a.add_counter(LocId(0), 0, 1);
        let mut b = Configuration::zero(2, 1);
        b.add_counter(LocId(0), 0, 1);
        // touch and then clear a later round in b
        b.add_counter(LocId(1), 3, 1);
        b.set_counter(LocId(1), 3, 0);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint_bytes(), b.fingerprint_bytes());
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_eq!(b.max_active_round(), Some(0));
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn trim_drops_trailing_zero_rounds() {
        let mut c = Configuration::zero(2, 1);
        c.add_counter(LocId(0), 4, 1);
        c.set_counter(LocId(0), 4, 0);
        c.add_counter(LocId(1), 1, 2);
        c.trim();
        assert_eq!(c.max_active_round(), Some(1));
        assert_eq!(c.counter(LocId(1), 1), 2);
        assert_eq!(c.counter(LocId(0), 4), 0);
    }

    #[test]
    fn fully_cleared_configuration_equals_the_zero_one() {
        let mut c = Configuration::zero(2, 1);
        c.add_counter(LocId(0), 0, 1);
        c.decrement_counter(LocId(0), 0);
        assert_eq!(c, Configuration::zero(2, 1));
        assert_eq!(hash_of(&c), hash_of(&Configuration::zero(2, 1)));
        assert_eq!(format!("{c}"), "<empty>");
    }

    #[test]
    fn decrement_and_set() {
        let mut c = Configuration::zero(2, 1);
        c.set_counter(LocId(0), 0, 3);
        c.decrement_counter(LocId(0), 0);
        assert_eq!(c.counter(LocId(0), 0), 2);
        c.set_var(VarId(0), 0, 9);
        assert_eq!(c.var(VarId(0), 0), 9);
    }

    #[test]
    #[should_panic(expected = "counter underflow")]
    fn decrement_of_zero_counter_panics() {
        let mut c = Configuration::zero(2, 1);
        c.decrement_counter(LocId(0), 0);
    }

    #[test]
    fn display_mentions_rounds() {
        let mut c = Configuration::zero(2, 1);
        c.add_counter(LocId(0), 1, 1);
        let s = format!("{c}");
        assert!(s.contains("round 0"));
        assert!(s.contains("round 1"));
    }

    #[test]
    fn slices_expose_materialised_rounds_only() {
        let mut c = Configuration::zero(2, 2);
        assert!(c.vars_slice(0).is_none());
        assert!(c.counters_slice(0).is_none());
        c.add_var(VarId(1), 0, 3);
        assert_eq!(c.vars_slice(0), Some(&[0, 3][..]));
        assert_eq!(c.counters_slice(0), Some(&[0, 0][..]));
        assert!(c.vars_slice(1).is_none());
    }
}
