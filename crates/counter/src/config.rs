//! Configurations of the (multi-round) counter system.
//!
//! A configuration `c = (κ, g, p)` records the location counters `κ[ℓ, k]`
//! and variable values `g[x, k]` for every round `k`, plus the parameter
//! values `p` (stored once in the [`crate::CounterSystem`], not per
//! configuration).

use ccta::{LocId, VarId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Counters and variable values of a single round.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RoundData {
    counters: Vec<u64>,
    vars: Vec<u64>,
}

impl RoundData {
    fn zero(num_locations: usize, num_vars: usize) -> Self {
        RoundData {
            counters: vec![0; num_locations],
            vars: vec![0; num_vars],
        }
    }

    /// Location counters of this round.
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// Variable values of this round.
    pub fn vars(&self) -> &[u64] {
        &self.vars
    }
}

/// A configuration of the counter system.
///
/// Rounds are materialised lazily: reads of rounds that were never touched
/// return zeros, and trailing all-zero rounds are trimmed so that two
/// configurations describing the same state compare (and hash) equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    num_locations: usize,
    num_vars: usize,
    rounds: Vec<RoundData>,
}

impl Configuration {
    /// The all-zero configuration for a model with the given numbers of
    /// locations and variables.
    pub fn zero(num_locations: usize, num_vars: usize) -> Self {
        Configuration {
            num_locations,
            num_vars,
            rounds: Vec::new(),
        }
    }

    /// Number of locations per round.
    pub fn num_locations(&self) -> usize {
        self.num_locations
    }

    /// Number of variables per round.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The counter `κ[loc, round]`.
    pub fn counter(&self, loc: LocId, round: u32) -> u64 {
        self.rounds
            .get(round as usize)
            .map(|r| r.counters[loc.0])
            .unwrap_or(0)
    }

    /// The variable value `g[var, round]`.
    pub fn var(&self, var: VarId, round: u32) -> u64 {
        self.rounds
            .get(round as usize)
            .map(|r| r.vars[var.0])
            .unwrap_or(0)
    }

    /// All variable values of a round (zeros if the round was never touched).
    pub fn round_vars(&self, round: u32) -> Vec<u64> {
        self.rounds
            .get(round as usize)
            .map(|r| r.vars.clone())
            .unwrap_or_else(|| vec![0; self.num_vars])
    }

    /// All location counters of a round.
    pub fn round_counters(&self, round: u32) -> Vec<u64> {
        self.rounds
            .get(round as usize)
            .map(|r| r.counters.clone())
            .unwrap_or_else(|| vec![0; self.num_locations])
    }

    /// The largest round index with a non-zero counter or variable, if any.
    pub fn max_active_round(&self) -> Option<u32> {
        self.rounds
            .iter()
            .enumerate()
            .rev()
            .find(|(_, r)| {
                r.counters.iter().any(|&c| c > 0) || r.vars.iter().any(|&v| v > 0)
            })
            .map(|(i, _)| i as u32)
    }

    /// Sum of the location counters over a set of locations in a round.
    pub fn count_in(&self, locs: &[LocId], round: u32) -> u64 {
        locs.iter().map(|&l| self.counter(l, round)).sum()
    }

    /// Total number of automaton copies present in a round (all locations).
    pub fn total_in_round(&self, round: u32) -> u64 {
        self.rounds
            .get(round as usize)
            .map(|r| r.counters.iter().sum())
            .unwrap_or(0)
    }

    fn ensure_round(&mut self, round: u32) -> &mut RoundData {
        while self.rounds.len() <= round as usize {
            self.rounds
                .push(RoundData::zero(self.num_locations, self.num_vars));
        }
        &mut self.rounds[round as usize]
    }

    fn normalize(&mut self) {
        while let Some(last) = self.rounds.last() {
            if last.counters.iter().all(|&c| c == 0) && last.vars.iter().all(|&v| v == 0) {
                self.rounds.pop();
            } else {
                break;
            }
        }
    }

    /// Sets the counter `κ[loc, round]`.
    pub fn set_counter(&mut self, loc: LocId, round: u32, value: u64) {
        self.ensure_round(round).counters[loc.0] = value;
        self.normalize();
    }

    /// Adds `delta` to the counter `κ[loc, round]`.
    pub fn add_counter(&mut self, loc: LocId, round: u32, delta: u64) {
        self.ensure_round(round).counters[loc.0] += delta;
        self.normalize();
    }

    /// Decreases the counter `κ[loc, round]` by one.
    ///
    /// # Panics
    ///
    /// Panics if the counter is already zero.
    pub fn decrement_counter(&mut self, loc: LocId, round: u32) {
        let data = self.ensure_round(round);
        assert!(
            data.counters[loc.0] > 0,
            "counter underflow at location {loc} round {round}"
        );
        data.counters[loc.0] -= 1;
        self.normalize();
    }

    /// Sets the variable `g[var, round]`.
    pub fn set_var(&mut self, var: VarId, round: u32, value: u64) {
        self.ensure_round(round).vars[var.0] = value;
        self.normalize();
    }

    /// Adds `delta` to the variable `g[var, round]`.
    pub fn add_var(&mut self, var: VarId, round: u32, delta: u64) {
        self.ensure_round(round).vars[var.0] += delta;
        self.normalize();
    }

    /// A compact fingerprint suitable as a hash-map key in explicit-state
    /// search (flattens all rounds into one vector).
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.rounds.len() * (self.num_locations + self.num_vars));
        for r in &self.rounds {
            out.extend_from_slice(&r.counters);
            out.extend_from_slice(&r.vars);
        }
        out
    }

    /// A memory-compact byte fingerprint for explicit-state search.
    ///
    /// # Panics
    ///
    /// Panics if any counter or variable exceeds 255 — explicit-state
    /// checking is only intended for small concrete parameter valuations.
    pub fn fingerprint_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.rounds.len() * (self.num_locations + self.num_vars));
        for r in &self.rounds {
            for &c in r.counters.iter().chain(r.vars.iter()) {
                assert!(
                    c <= u8::MAX as u64,
                    "configuration value {c} too large for compact fingerprint"
                );
                out.push(c as u8);
            }
        }
        out
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rounds.is_empty() {
            return f.write_str("<empty>");
        }
        for (k, r) in self.rounds.iter().enumerate() {
            if k > 0 {
                writeln!(f)?;
            }
            write!(f, "round {k}: kappa={:?} g={:?}", r.counters, r.vars)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_configuration_reads_zeros_everywhere() {
        let c = Configuration::zero(5, 3);
        assert_eq!(c.counter(LocId(4), 7), 0);
        assert_eq!(c.var(VarId(2), 0), 0);
        assert_eq!(c.max_active_round(), None);
        assert_eq!(c.total_in_round(3), 0);
        assert_eq!(c.round_vars(2), vec![0, 0, 0]);
        assert_eq!(c.round_counters(2), vec![0; 5]);
        assert_eq!(format!("{c}"), "<empty>");
    }

    #[test]
    fn counters_and_vars_are_round_indexed() {
        let mut c = Configuration::zero(3, 2);
        c.add_counter(LocId(1), 0, 2);
        c.add_counter(LocId(2), 1, 1);
        c.add_var(VarId(0), 1, 5);
        assert_eq!(c.counter(LocId(1), 0), 2);
        assert_eq!(c.counter(LocId(1), 1), 0);
        assert_eq!(c.counter(LocId(2), 1), 1);
        assert_eq!(c.var(VarId(0), 1), 5);
        assert_eq!(c.var(VarId(0), 0), 0);
        assert_eq!(c.max_active_round(), Some(1));
        assert_eq!(c.total_in_round(0), 2);
        assert_eq!(c.count_in(&[LocId(1), LocId(2)], 0), 2);
    }

    #[test]
    fn trailing_zero_rounds_do_not_affect_equality() {
        let mut a = Configuration::zero(2, 1);
        a.add_counter(LocId(0), 0, 1);
        let mut b = Configuration::zero(2, 1);
        b.add_counter(LocId(0), 0, 1);
        // touch and then clear a later round in b
        b.add_counter(LocId(1), 3, 1);
        b.set_counter(LocId(1), 3, 0);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn decrement_and_set() {
        let mut c = Configuration::zero(2, 1);
        c.set_counter(LocId(0), 0, 3);
        c.decrement_counter(LocId(0), 0);
        assert_eq!(c.counter(LocId(0), 0), 2);
        c.set_var(VarId(0), 0, 9);
        assert_eq!(c.var(VarId(0), 0), 9);
    }

    #[test]
    #[should_panic(expected = "counter underflow")]
    fn decrement_of_zero_counter_panics() {
        let mut c = Configuration::zero(2, 1);
        c.decrement_counter(LocId(0), 0);
    }

    #[test]
    fn display_mentions_rounds() {
        let mut c = Configuration::zero(2, 1);
        c.add_counter(LocId(0), 1, 1);
        let s = format!("{c}");
        assert!(s.contains("round 0"));
        assert!(s.contains("round 1"));
    }
}
