//! The counter system `Sys(TAⁿ, PTAᶜ)` for a concrete parameter valuation.

use crate::config::Configuration;
use crate::error::CounterError;
use ccta::{
    BinValue, LocId, ModelKind, Owner, ParamValuation, Probability, RuleId, SystemModel,
    SystemSize,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An action `α = (r, k)`: the execution of rule `r` in round `k` by a single
/// automaton copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Action {
    /// The rule being executed.
    pub rule: RuleId,
    /// The round in which it is executed.
    pub round: u32,
}

impl Action {
    /// Creates an action.
    pub fn new(rule: RuleId, round: u32) -> Self {
        Action { rule, round }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.rule, self.round)
    }
}

/// One probabilistic outcome of applying an action.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Index of the chosen branch of the rule.
    pub branch: usize,
    /// Probability of this branch.
    pub probability: Probability,
    /// The configuration reached.
    pub config: Configuration,
}

/// The counter system of a model instantiated at a concrete admissible
/// parameter valuation.
#[derive(Debug, Clone)]
pub struct CounterSystem {
    model: SystemModel,
    params: ParamValuation,
    size: SystemSize,
}

impl CounterSystem {
    /// Creates the counter system for an admissible valuation.
    ///
    /// # Errors
    ///
    /// Returns [`CounterError::NotAdmissible`] if the valuation violates the
    /// resilience condition of the model's environment.
    pub fn new(model: SystemModel, params: ParamValuation) -> Result<Self, CounterError> {
        let size = model
            .env()
            .system_size(&params)
            .ok_or_else(|| CounterError::NotAdmissible {
                valuation: params.to_string(),
            })?;
        Ok(CounterSystem {
            model,
            params,
            size,
        })
    }

    /// The underlying model.
    pub fn model(&self) -> &SystemModel {
        &self.model
    }

    /// The parameter valuation.
    pub fn params(&self) -> &ParamValuation {
        &self.params
    }

    /// Number of modelled correct processes `N(p).0`.
    pub fn num_processes(&self) -> u64 {
        self.size.processes
    }

    /// Number of modelled common coins `N(p).1`.
    pub fn num_coins(&self) -> u64 {
        self.size.coins
    }

    /// An all-zero configuration with the right dimensions for this system.
    pub fn empty_configuration(&self) -> Configuration {
        Configuration::zero(self.model.locations().len(), self.model.vars().len())
    }

    // ------------------------------------------------------------------
    // Initial configurations
    // ------------------------------------------------------------------

    /// All ways of distributing `count` automaton copies over the given
    /// locations (a composition enumeration).
    fn distributions(locs: &[LocId], count: u64) -> Vec<Vec<(LocId, u64)>> {
        fn rec(
            locs: &[LocId],
            idx: usize,
            remaining: u64,
            current: &mut Vec<(LocId, u64)>,
            out: &mut Vec<Vec<(LocId, u64)>>,
        ) {
            if idx == locs.len() {
                if remaining == 0 {
                    out.push(current.clone());
                }
                return;
            }
            if idx == locs.len() - 1 {
                current.push((locs[idx], remaining));
                out.push(current.clone());
                current.pop();
                return;
            }
            for here in 0..=remaining {
                current.push((locs[idx], here));
                rec(locs, idx + 1, remaining - here, current, out);
                current.pop();
            }
        }
        if locs.is_empty() {
            return if count == 0 {
                vec![Vec::new()]
            } else {
                Vec::new()
            };
        }
        let mut out = Vec::new();
        rec(locs, 0, count, &mut Vec::new(), &mut out);
        out
    }

    /// Enumerates configurations that place all correct processes in
    /// `proc_locs` (in every possible split), all coins in `coin_locs`, and
    /// set every variable to zero.  All copies are placed in round 0.
    pub fn configurations_over(
        &self,
        proc_locs: &[LocId],
        coin_locs: &[LocId],
    ) -> Vec<Configuration> {
        let mut out = Vec::new();
        let proc_dists = Self::distributions(proc_locs, self.num_processes());
        let coin_dists = Self::distributions(coin_locs, self.num_coins());
        for pd in &proc_dists {
            for cd in &coin_dists {
                let mut cfg = self.empty_configuration();
                for &(loc, cnt) in pd.iter().chain(cd.iter()) {
                    if cnt > 0 {
                        cfg.add_counter(loc, 0, cnt);
                    }
                }
                out.push(cfg);
            }
        }
        out
    }

    /// Initial configurations in the sense of Sect. III-C: every process and
    /// the common coin occupy *initial* locations of round 0, all variables
    /// are zero.
    pub fn initial_configurations(&self) -> Vec<Configuration> {
        self.configurations_over(
            &self.model.initial_locations(Owner::Process, None),
            &self.model.initial_locations(Owner::Coin, None),
        )
    }

    /// Round-start configurations: every process and the coin occupy *border*
    /// locations.  For single-round models this is the set `Σ_u` of Theorem 2
    /// (the union of renamed initial configurations of all rounds).
    pub fn round_start_configurations(&self) -> Vec<Configuration> {
        self.configurations_over(
            &self.model.border_locations(Owner::Process, None),
            &self.model.border_locations(Owner::Coin, None),
        )
    }

    /// Round-start configurations in which every correct process starts with
    /// the given value (all processes in `B_v`); the coin is unconstrained.
    pub fn unanimous_start_configurations(&self, value: BinValue) -> Vec<Configuration> {
        self.configurations_over(
            &self.model.border_locations(Owner::Process, Some(value)),
            &self.model.border_locations(Owner::Coin, None),
        )
    }

    // ------------------------------------------------------------------
    // Actions
    // ------------------------------------------------------------------

    /// Whether the guard of `rule` evaluates to true in round `round` of
    /// configuration `cfg` (written `c, k ⊨ φ` in the paper).
    pub fn is_unlocked(&self, cfg: &Configuration, rule: RuleId, round: u32) -> bool {
        let vars = cfg.round_vars(round);
        self.model
            .rule(rule)
            .guard()
            .holds(&vars, self.params.values())
    }

    /// Whether the action is applicable: its rule is unlocked and the source
    /// location counter is at least one.
    pub fn is_applicable(&self, cfg: &Configuration, action: Action) -> bool {
        let rule = self.model.rule(action.rule);
        cfg.counter(rule.from(), action.round) >= 1
            && self.is_unlocked(cfg, action.rule, action.round)
    }

    /// The round that the destination of a rule lands in: round-switch rules
    /// of multi-round models move the automaton to the next round.
    fn destination_round(&self, rule: RuleId, round: u32) -> u32 {
        if self.model.kind() == ModelKind::MultiRound && self.model.rule(rule).is_round_switch() {
            round + 1
        } else {
            round
        }
    }

    /// Applies action `α` with probabilistic outcome `branch`, producing
    /// `apply(α, c, ℓ)` from the paper.
    ///
    /// # Errors
    ///
    /// Returns an error if the action is not applicable or the branch does
    /// not exist.
    pub fn apply(
        &self,
        cfg: &Configuration,
        action: Action,
        branch: usize,
    ) -> Result<Configuration, CounterError> {
        if !self.is_applicable(cfg, action) {
            return Err(CounterError::NotApplicable {
                action: action.to_string(),
            });
        }
        let rule = self.model.rule(action.rule);
        let branches = rule.branches();
        if branch >= branches.len() {
            return Err(CounterError::NoSuchBranch {
                action: action.to_string(),
                branch,
            });
        }
        let mut next = cfg.clone();
        next.decrement_counter(rule.from(), action.round);
        let dest_round = self.destination_round(action.rule, action.round);
        next.add_counter(branches[branch].to, dest_round, 1);
        for &(var, delta) in rule.update().increments() {
            next.add_var(var, action.round, delta);
        }
        Ok(next)
    }

    /// Applies a Dirac action (single branch).
    ///
    /// # Errors
    ///
    /// Same as [`CounterSystem::apply`].
    pub fn apply_dirac(
        &self,
        cfg: &Configuration,
        action: Action,
    ) -> Result<Configuration, CounterError> {
        self.apply(cfg, action, 0)
    }

    /// The probabilistic transition function `∆(c, α)`: all outcomes of the
    /// action with their probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error if the action is not applicable.
    pub fn outcomes(
        &self,
        cfg: &Configuration,
        action: Action,
    ) -> Result<Vec<Outcome>, CounterError> {
        if !self.is_applicable(cfg, action) {
            return Err(CounterError::NotApplicable {
                action: action.to_string(),
            });
        }
        let rule = self.model.rule(action.rule);
        let mut out = Vec::with_capacity(rule.branches().len());
        for (i, b) in rule.branches().iter().enumerate() {
            if b.prob.is_zero() {
                continue;
            }
            out.push(Outcome {
                branch: i,
                probability: b.prob,
                config: self.apply(cfg, action, i)?,
            });
        }
        Ok(out)
    }

    /// The rounds in which actions may currently fire: `0 ..= max active
    /// round` (at least round 0).
    pub fn active_rounds(&self, cfg: &Configuration) -> std::ops::RangeInclusive<u32> {
        0..=cfg.max_active_round().unwrap_or(0)
    }

    /// All applicable actions in the configuration.
    pub fn applicable_actions(&self, cfg: &Configuration) -> Vec<Action> {
        let mut out = Vec::new();
        for round in self.active_rounds(cfg) {
            for rule in self.model.rule_ids() {
                let action = Action::new(rule, round);
                if self.is_applicable(cfg, action) {
                    out.push(action);
                }
            }
        }
        out
    }

    /// Applicable actions whose rule is not a self-loop (self-loops only
    /// produce stuttering and are irrelevant for reachability).
    pub fn progress_actions(&self, cfg: &Configuration) -> Vec<Action> {
        self.applicable_actions(cfg)
            .into_iter()
            .filter(|a| !self.model.rule(a.rule).is_self_loop())
            .collect()
    }

    /// Whether no progress action is applicable (the configuration is
    /// terminal up to stuttering).
    pub fn is_terminal(&self, cfg: &Configuration) -> bool {
        self.progress_actions(cfg).is_empty()
    }

    /// Number of correct processes currently occupying any of the given
    /// locations in `round`.
    pub fn occupancy(&self, cfg: &Configuration, locs: &[LocId], round: u32) -> u64 {
        cfg.count_in(locs, round)
    }

    /// Renders an action with names resolved.
    pub fn describe_action(&self, action: Action) -> String {
        format!(
            "({}, round {})",
            self.model.rule(action.rule).name(),
            action.round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{small_params, voting_model};

    fn system() -> CounterSystem {
        CounterSystem::new(voting_model(), small_params()).unwrap()
    }

    #[test]
    fn construction_checks_admissibility() {
        let err = CounterSystem::new(voting_model(), ParamValuation::new(vec![3, 1, 1, 1]))
            .unwrap_err();
        assert!(matches!(err, CounterError::NotAdmissible { .. }));
        let sys = system();
        assert_eq!(sys.num_processes(), 3);
        assert_eq!(sys.num_coins(), 1);
    }

    #[test]
    fn initial_configurations_cover_all_splits() {
        let sys = system();
        // 3 processes over {I0, I1} -> 4 splits; 1 coin over {IC} -> 1
        let inits = sys.initial_configurations();
        assert_eq!(inits.len(), 4);
        for cfg in &inits {
            assert_eq!(cfg.total_in_round(0), 4); // 3 processes + 1 coin
            assert_eq!(cfg.round_vars(0), vec![0, 0, 0, 0]);
        }
        // round-start configurations distribute over border locations
        let starts = sys.round_start_configurations();
        assert_eq!(starts.len(), 4);
        let unanimous = sys.unanimous_start_configurations(BinValue::Zero);
        assert_eq!(unanimous.len(), 1);
        let j0 = sys.model().location_id("J0").unwrap();
        assert_eq!(unanimous[0].counter(j0, 0), 3);
    }

    #[test]
    fn guard_unlocking_follows_shared_variables() {
        let sys = system();
        let model = sys.model().clone();
        let maj0 = model.rule_id("maj0").unwrap();
        let mut cfg = sys.empty_configuration();
        // quorum is n - t - f = 2
        assert!(!sys.is_unlocked(&cfg, maj0, 0));
        cfg.add_var(model.var_id("v0").unwrap(), 0, 2);
        assert!(sys.is_unlocked(&cfg, maj0, 0));
        // guard of another round still locked
        assert!(!sys.is_unlocked(&cfg, maj0, 1));
    }

    #[test]
    fn apply_moves_one_process_and_updates_variables() {
        let sys = system();
        let model = sys.model().clone();
        let i0 = model.location_id("I0").unwrap();
        let s = model.location_id("S").unwrap();
        let v0 = model.var_id("v0").unwrap();
        let bcast0 = model.rule_id("bcast0").unwrap();

        let mut cfg = sys.empty_configuration();
        cfg.add_counter(i0, 0, 3);
        cfg.add_counter(model.location_id("IC").unwrap(), 0, 1);

        let action = Action::new(bcast0, 0);
        assert!(sys.is_applicable(&cfg, action));
        let next = sys.apply_dirac(&cfg, action).unwrap();
        assert_eq!(next.counter(i0, 0), 2);
        assert_eq!(next.counter(s, 0), 1);
        assert_eq!(next.var(v0, 0), 1);
        // original configuration untouched
        assert_eq!(cfg.counter(i0, 0), 3);
    }

    #[test]
    fn apply_rejects_locked_or_empty_source() {
        let sys = system();
        let model = sys.model().clone();
        let maj0 = model.rule_id("maj0").unwrap();
        let cfg = sys.empty_configuration();
        let err = sys.apply_dirac(&cfg, Action::new(maj0, 0)).unwrap_err();
        assert!(matches!(err, CounterError::NotApplicable { .. }));
    }

    #[test]
    fn apply_rejects_missing_branch() {
        let sys = system();
        let model = sys.model().clone();
        let bcast0 = model.rule_id("bcast0").unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.add_counter(model.location_id("I0").unwrap(), 0, 1);
        let err = sys.apply(&cfg, Action::new(bcast0, 0), 5).unwrap_err();
        assert!(matches!(err, CounterError::NoSuchBranch { .. }));
    }

    #[test]
    fn round_switch_moves_to_next_round_in_multi_round_models() {
        let sys = system();
        let model = sys.model().clone();
        let e0 = model.location_id("E0").unwrap();
        let j0 = model.location_id("J0").unwrap();
        let switch = model
            .rule_ids()
            .find(|&r| model.rule(r).is_round_switch() && model.rule(r).from() == e0)
            .unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.add_counter(e0, 0, 1);
        let next = sys.apply_dirac(&cfg, Action::new(switch, 0)).unwrap();
        assert_eq!(next.counter(e0, 0), 0);
        assert_eq!(next.counter(j0, 1), 1);
        assert_eq!(next.max_active_round(), Some(1));
    }

    #[test]
    fn round_switch_stays_in_round_for_single_round_models() {
        let rd = voting_model().single_round().unwrap();
        let sys = CounterSystem::new(rd, small_params()).unwrap();
        let model = sys.model().clone();
        let e0 = model.location_id("E0").unwrap();
        let j0_copy = model.location_id("J0'").unwrap();
        let switch = model
            .rule_ids()
            .find(|&r| model.rule(r).is_round_switch() && model.rule(r).from() == e0)
            .unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.add_counter(e0, 0, 1);
        let next = sys.apply_dirac(&cfg, Action::new(switch, 0)).unwrap();
        assert_eq!(next.counter(j0_copy, 0), 1);
        assert_eq!(next.max_active_round(), Some(0));
    }

    #[test]
    fn probabilistic_outcomes_enumerate_branches() {
        let sys = system();
        let model = sys.model().clone();
        let toss = model.rule_id("toss").unwrap();
        let ic = model.location_id("IC").unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.add_counter(ic, 0, 1);
        let outcomes = sys.outcomes(&cfg, Action::new(toss, 0)).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.probability == Probability::HALF));
        let h0 = model.location_id("H0").unwrap();
        let h1 = model.location_id("H1").unwrap();
        assert_eq!(outcomes[0].config.counter(h0, 0), 1);
        assert_eq!(outcomes[1].config.counter(h1, 0), 1);
    }

    #[test]
    fn applicable_and_progress_actions() {
        let sys = system();
        let inits = sys.initial_configurations();
        // all processes with value 0: applicable actions are bcast0 x?, and the toss
        let all_zero = inits
            .iter()
            .find(|c| {
                c.counter(sys.model().location_id("I0").unwrap(), 0) == 3
            })
            .unwrap();
        let actions = sys.applicable_actions(all_zero);
        let names: Vec<&str> = actions
            .iter()
            .map(|a| sys.model().rule(a.rule).name())
            .collect();
        assert!(names.contains(&"bcast0"));
        assert!(names.contains(&"toss"));
        assert!(!names.contains(&"bcast1"));
        assert!(!sys.is_terminal(all_zero));
        // empty configuration is terminal
        assert!(sys.is_terminal(&sys.empty_configuration()));
    }

    #[test]
    fn describe_action_uses_rule_names() {
        let sys = system();
        let bcast0 = sys.model().rule_id("bcast0").unwrap();
        assert_eq!(sys.describe_action(Action::new(bcast0, 2)), "(bcast0, round 2)");
    }
}
