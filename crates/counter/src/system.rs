//! The counter system `Sys(TAⁿ, PTAᶜ)` for a concrete parameter valuation.
//!
//! # The successor-generation fast path
//!
//! Explicit-state checking spends nearly all of its time enumerating
//! applicable actions and producing successor configurations, so
//! [`CounterSystem::new`] precompiles the model into flat per-rule records:
//! the source location, the positive-probability branches, the variable
//! increments, and the guard with its threshold bounds already evaluated at
//! the (fixed) parameter valuation.  On top of these records,
//!
//! * [`CounterSystem::progress_actions_into`] enumerates applicable progress
//!   actions into a caller-owned buffer (no per-expansion allocation),
//! * guard evaluation borrows the round's variable slice directly from the
//!   configuration (no `round_vars` clone), and
//! * [`CounterSystem::expand_action`] visits every probabilistic successor
//!   of an action by applying and undoing counter deltas *in place* on a
//!   scratch configuration — no `Configuration` clone per branch.
//!
//! The allocating APIs ([`CounterSystem::outcomes`],
//! [`CounterSystem::progress_actions`], …) are retained for tests,
//! adversaries and counterexample replay; they are thin wrappers over the
//! same compiled records.
//!
//! All compiled state (rules, guard bounds, Zobrist tables) is immutable
//! after construction, so one `CounterSystem` — and any number of
//! [`RowEngine`]s over it — is `Sync`-shareable across the checker's worker
//! threads: every mutation happens on caller-owned scratch
//! (configurations, rows, action buffers), never on the system itself.
//! The `shared_state_is_sync` test pins this contract.

use crate::config::Configuration;
use crate::error::CounterError;
use ccta::{
    AtomicGuard, BinValue, GuardRel, LocId, ModelKind, Owner, ParamValuation, Probability, RuleId,
    SystemModel, SystemSize, VarId,
};
use std::fmt;
use std::ops::ControlFlow;

/// An action `α = (r, k)`: the execution of rule `r` in round `k` by a single
/// automaton copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Action {
    /// The rule being executed.
    pub rule: RuleId,
    /// The round in which it is executed.
    pub round: u32,
}

impl Action {
    /// Creates an action.
    pub fn new(rule: RuleId, round: u32) -> Self {
        Action { rule, round }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.rule, self.round)
    }
}

/// One probabilistic outcome of applying an action.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Index of the chosen branch of the rule.
    pub branch: usize,
    /// Probability of this branch.
    pub probability: Probability,
    /// The configuration reached.
    pub config: Configuration,
}

/// A guard atom with its parameter-dependent bound evaluated at the fixed
/// valuation of the counter system.
#[derive(Debug, Clone)]
struct CompiledAtom {
    atom: AtomicGuard,
    rel: GuardRel,
    bound: i128,
}

/// A rule flattened for the exploration fast path.
#[derive(Debug, Clone)]
struct CompiledRule {
    from: LocId,
    round_switch: bool,
    /// Positive-probability branches: `(branch index, target, probability)`.
    branches: Vec<(usize, LocId, Probability)>,
    increments: Vec<(VarId, u64)>,
    guard: Vec<CompiledAtom>,
}

impl CompiledRule {
    #[inline]
    fn guard_holds(&self, vars: &[u64]) -> bool {
        self.guard
            .iter()
            .all(|g| g.rel.holds(g.atom.lhs_value(vars), g.bound))
    }

    #[inline]
    fn guard_holds_bytes(&self, vars: &[u8]) -> bool {
        self.guard
            .iter()
            .all(|g| g.rel.holds(g.atom.lhs_value_bytes(vars), g.bound))
    }
}

/// The counter system of a model instantiated at a concrete admissible
/// parameter valuation.
#[derive(Debug, Clone)]
pub struct CounterSystem {
    model: SystemModel,
    params: ParamValuation,
    size: SystemSize,
    multi_round: bool,
    rules: Vec<CompiledRule>,
    /// Progress rule ids grouped by source location, so expansion only
    /// scans rules whose source is occupied.
    progress_rules_from: Vec<Vec<RuleId>>,
    /// Progress rules as a compact `(rule index, source slot)` table in
    /// rule order, for the row engine's linear enumeration pass.
    progress_compact: Vec<(u32, u16)>,
    /// All-zero variable row, lent out for never-materialised rounds.
    zero_vars: Vec<u64>,
    /// Zobrist keys: one 64-bit key per `(slot, value)` pair, where slots
    /// are the locations followed by the variables and values range over
    /// `0..=255` (value 0 maps to key 0, so unmaterialised and trailing
    /// zero rounds contribute nothing).  Round `k` rotates the key by `k`.
    zobrist: Vec<u64>,
}

/// Number of tabulated values per Zobrist slot (the packed-byte range).
const ZOBRIST_VALUES: usize = 256;

impl CounterSystem {
    /// Creates the counter system for an admissible valuation, precompiling
    /// every rule (branches, increments, guard bounds) for the exploration
    /// fast path.
    ///
    /// # Errors
    ///
    /// Returns [`CounterError::NotAdmissible`] if the valuation violates the
    /// resilience condition of the model's environment.
    pub fn new(model: SystemModel, params: ParamValuation) -> Result<Self, CounterError> {
        let size = model
            .env()
            .system_size(&params)
            .ok_or_else(|| CounterError::NotAdmissible {
                valuation: params.to_string(),
            })?;
        let param_values = params.values();
        let rules: Vec<CompiledRule> = model
            .rules()
            .iter()
            .map(|rule| CompiledRule {
                from: rule.from(),
                round_switch: rule.is_round_switch(),
                branches: rule
                    .branches()
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| !b.prob.is_zero())
                    .map(|(i, b)| (i, b.to, b.prob))
                    .collect(),
                increments: rule.update().increments().to_vec(),
                guard: rule
                    .guard()
                    .atoms()
                    .iter()
                    .map(|atom| CompiledAtom {
                        atom: atom.clone(),
                        rel: atom.rel(),
                        bound: atom.bound().eval(param_values),
                    })
                    .collect(),
            })
            .collect();
        let progress_rules: Vec<RuleId> = model
            .rule_ids()
            .filter(|&r| !model.rule(r).is_self_loop())
            .collect();
        let mut progress_rules_from: Vec<Vec<RuleId>> = vec![Vec::new(); model.locations().len()];
        let mut progress_compact = Vec::with_capacity(progress_rules.len());
        for r in progress_rules {
            progress_rules_from[rules[r.0].from.0].push(r);
            progress_compact.push((r.0 as u32, rules[r.0].from.0 as u16));
        }
        let zero_vars = vec![0; model.vars().len()];
        let slots = model.locations().len() + model.vars().len();
        let mut seed = 0x0DD5_B007_5EED_C0DEu64;
        let zobrist: Vec<u64> = (0..slots * ZOBRIST_VALUES)
            .map(|i| {
                if i % ZOBRIST_VALUES == 0 {
                    return 0; // value 0 contributes nothing
                }
                // SplitMix64 stream, deterministic across runs
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect();
        Ok(CounterSystem {
            multi_round: model.kind() == ModelKind::MultiRound,
            model,
            params,
            size,
            rules,
            progress_rules_from,
            progress_compact,
            zero_vars,
            zobrist,
        })
    }

    /// The underlying model.
    pub fn model(&self) -> &SystemModel {
        &self.model
    }

    /// The parameter valuation.
    pub fn params(&self) -> &ParamValuation {
        &self.params
    }

    /// Number of modelled correct processes `N(p).0`.
    pub fn num_processes(&self) -> u64 {
        self.size.processes
    }

    /// Number of modelled common coins `N(p).1`.
    pub fn num_coins(&self) -> u64 {
        self.size.coins
    }

    /// An all-zero configuration with the right dimensions for this system.
    pub fn empty_configuration(&self) -> Configuration {
        Configuration::zero(self.model.locations().len(), self.model.vars().len())
    }

    // ------------------------------------------------------------------
    // Initial configurations
    // ------------------------------------------------------------------

    /// All ways of distributing `count` automaton copies over the given
    /// locations (a composition enumeration).
    fn distributions(locs: &[LocId], count: u64) -> Vec<Vec<(LocId, u64)>> {
        fn rec(
            locs: &[LocId],
            idx: usize,
            remaining: u64,
            current: &mut Vec<(LocId, u64)>,
            out: &mut Vec<Vec<(LocId, u64)>>,
        ) {
            if idx == locs.len() {
                if remaining == 0 {
                    out.push(current.clone());
                }
                return;
            }
            if idx == locs.len() - 1 {
                current.push((locs[idx], remaining));
                out.push(current.clone());
                current.pop();
                return;
            }
            for here in 0..=remaining {
                current.push((locs[idx], here));
                rec(locs, idx + 1, remaining - here, current, out);
                current.pop();
            }
        }
        if locs.is_empty() {
            return if count == 0 {
                vec![Vec::new()]
            } else {
                Vec::new()
            };
        }
        let mut out = Vec::new();
        rec(locs, 0, count, &mut Vec::new(), &mut out);
        out
    }

    /// Enumerates configurations that place all correct processes in
    /// `proc_locs` (in every possible split), all coins in `coin_locs`, and
    /// set every variable to zero.  All copies are placed in round 0.
    pub fn configurations_over(
        &self,
        proc_locs: &[LocId],
        coin_locs: &[LocId],
    ) -> Vec<Configuration> {
        let mut out = Vec::new();
        let proc_dists = Self::distributions(proc_locs, self.num_processes());
        let coin_dists = Self::distributions(coin_locs, self.num_coins());
        for pd in &proc_dists {
            for cd in &coin_dists {
                let mut cfg = self.empty_configuration();
                for &(loc, cnt) in pd.iter().chain(cd.iter()) {
                    if cnt > 0 {
                        cfg.add_counter(loc, 0, cnt);
                    }
                }
                out.push(cfg);
            }
        }
        out
    }

    /// Initial configurations in the sense of Sect. III-C: every process and
    /// the common coin occupy *initial* locations of round 0, all variables
    /// are zero.
    pub fn initial_configurations(&self) -> Vec<Configuration> {
        self.configurations_over(
            &self.model.initial_locations(Owner::Process, None),
            &self.model.initial_locations(Owner::Coin, None),
        )
    }

    /// Round-start configurations: every process and the coin occupy *border*
    /// locations.  For single-round models this is the set `Σ_u` of Theorem 2
    /// (the union of renamed initial configurations of all rounds).
    pub fn round_start_configurations(&self) -> Vec<Configuration> {
        self.configurations_over(
            &self.model.border_locations(Owner::Process, None),
            &self.model.border_locations(Owner::Coin, None),
        )
    }

    /// Round-start configurations in which every correct process starts with
    /// the given value (all processes in `B_v`); the coin is unconstrained.
    pub fn unanimous_start_configurations(&self, value: BinValue) -> Vec<Configuration> {
        self.configurations_over(
            &self.model.border_locations(Owner::Process, Some(value)),
            &self.model.border_locations(Owner::Coin, None),
        )
    }

    // ------------------------------------------------------------------
    // Actions
    // ------------------------------------------------------------------

    /// The variable row of a round, borrowed from the configuration, or the
    /// all-zero row if the round was never materialised.
    #[inline]
    fn round_vars_ref<'a>(&'a self, cfg: &'a Configuration, round: u32) -> &'a [u64] {
        cfg.vars_slice(round).unwrap_or(&self.zero_vars)
    }

    /// Whether the guard of `rule` evaluates to true in round `round` of
    /// configuration `cfg` (written `c, k ⊨ φ` in the paper).
    pub fn is_unlocked(&self, cfg: &Configuration, rule: RuleId, round: u32) -> bool {
        self.rules[rule.0].guard_holds(self.round_vars_ref(cfg, round))
    }

    /// The compiled guard bounds of every rule, evaluated at this system's
    /// (fixed) parameter valuation: one `(relation, bound)` pair per guard
    /// atom, in rule order.  Two systems over the same model differ in
    /// behaviour exactly where these bounds differ (branches, increments and
    /// probabilities are valuation-independent), which is what lets the
    /// checker's incremental sweep classify a valuation step as
    /// relaxing/tightening per rule (see `ccchecker`'s "Incremental sweeps"
    /// docs).
    pub fn guard_bounds(&self) -> Vec<Vec<(GuardRel, i128)>> {
        self.rules
            .iter()
            .map(|r| r.guard.iter().map(|g| (g.rel, g.bound)).collect())
            .collect()
    }

    /// Whether the guard of `rule` holds on a packed row's variable bytes at
    /// the compiled (current-valuation) bounds.
    pub fn rule_guard_holds_bytes(&self, rule: RuleId, vars: &[u8]) -> bool {
        self.rules[rule.0].guard_holds_bytes(vars)
    }

    /// [`CounterSystem::rule_guard_holds_bytes`] with explicit bounds
    /// substituted for the compiled ones (one per guard atom, in atom
    /// order).  This is how the incremental sweep re-evaluates a rule's
    /// guard *at a previous valuation* on stored state rows without keeping
    /// the previous system alive.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `bounds` does not match the rule's atom
    /// count.
    pub fn rule_guard_holds_bytes_at(&self, rule: RuleId, vars: &[u8], bounds: &[i128]) -> bool {
        let guard = &self.rules[rule.0].guard;
        debug_assert_eq!(guard.len(), bounds.len(), "bounds per atom");
        guard
            .iter()
            .zip(bounds)
            .all(|(g, &b)| g.rel.holds(g.atom.lhs_value_bytes(vars), b))
    }

    /// Whether the action is applicable: its rule is unlocked and the source
    /// location counter is at least one.
    pub fn is_applicable(&self, cfg: &Configuration, action: Action) -> bool {
        let rule = &self.rules[action.rule.0];
        cfg.counter(rule.from, action.round) >= 1
            && rule.guard_holds(self.round_vars_ref(cfg, action.round))
    }

    /// The round that the destination of a rule lands in: round-switch rules
    /// of multi-round models move the automaton to the next round.
    fn destination_round(&self, rule: RuleId, round: u32) -> u32 {
        if self.multi_round && self.rules[rule.0].round_switch {
            round + 1
        } else {
            round
        }
    }

    /// Applies action `α` with probabilistic outcome `branch`, producing
    /// `apply(α, c, ℓ)` from the paper.
    ///
    /// # Errors
    ///
    /// Returns an error if the action is not applicable or the branch does
    /// not exist.
    pub fn apply(
        &self,
        cfg: &Configuration,
        action: Action,
        branch: usize,
    ) -> Result<Configuration, CounterError> {
        if !self.is_applicable(cfg, action) {
            return Err(CounterError::NotApplicable {
                action: action.to_string(),
            });
        }
        let rule = self.model.rule(action.rule);
        let branches = rule.branches();
        if branch >= branches.len() {
            return Err(CounterError::NoSuchBranch {
                action: action.to_string(),
                branch,
            });
        }
        let mut next = cfg.clone();
        next.decrement_counter(rule.from(), action.round);
        let dest_round = self.destination_round(action.rule, action.round);
        next.add_counter(branches[branch].to, dest_round, 1);
        for &(var, delta) in rule.update().increments() {
            next.add_var(var, action.round, delta);
        }
        Ok(next)
    }

    /// Applies a Dirac action (single branch).
    ///
    /// # Errors
    ///
    /// Same as [`CounterSystem::apply`].
    pub fn apply_dirac(
        &self,
        cfg: &Configuration,
        action: Action,
    ) -> Result<Configuration, CounterError> {
        self.apply(cfg, action, 0)
    }

    /// The Zobrist key of holding `value` in the location slot `loc` of
    /// round `round`.
    #[inline]
    fn loc_key(&self, loc: LocId, round: u32, value: u64) -> u64 {
        debug_assert!(value < ZOBRIST_VALUES as u64, "counter too large to hash");
        self.zobrist[loc.0 * ZOBRIST_VALUES + value as usize].rotate_left(round)
    }

    /// The Zobrist key of variable slot `var` holding `value` in `round`.
    #[inline]
    fn var_key(&self, var: VarId, round: u32, value: u64) -> u64 {
        debug_assert!(value < ZOBRIST_VALUES as u64, "variable too large to hash");
        self.zobrist[(self.model.locations().len() + var.0) * ZOBRIST_VALUES + value as usize]
            .rotate_left(round)
    }

    /// The incremental Zobrist hash of a configuration: the XOR of the keys
    /// of every non-zero counter and variable value.  Trailing zero rounds
    /// contribute nothing, so observably equal configurations hash equal.
    /// [`CounterSystem::expand_action_hashed`] maintains this hash across
    /// delta application in O(deltas) instead of O(state size).
    pub fn state_hash(&self, cfg: &Configuration) -> u64 {
        let mut hash = 0u64;
        for round in self.active_rounds(cfg) {
            if let Some(counters) = cfg.counters_slice(round) {
                for (loc, &v) in counters.iter().enumerate() {
                    if v > 0 {
                        hash ^= self.loc_key(LocId(loc), round, v);
                    }
                }
            }
            if let Some(vars) = cfg.vars_slice(round) {
                for (var, &v) in vars.iter().enumerate() {
                    if v > 0 {
                        hash ^= self.var_key(VarId(var), round, v);
                    }
                }
            }
        }
        hash
    }

    /// Visits every positive-probability successor of an *applicable* action
    /// by mutating `cfg` in place: the source decrement and the variable
    /// increments are applied once, then each branch target is added,
    /// handed to `visit`, and removed again.  After the call (including on
    /// early exit) `cfg` describes the same state as before, though trailing
    /// zero rounds may have been materialised (which observers ignore).
    ///
    /// `visit` receives the branch index, its probability, and the successor
    /// configuration; returning [`ControlFlow::Break`] stops the visit.
    ///
    /// The caller must have established applicability (e.g. by enumerating
    /// actions with [`CounterSystem::progress_actions_into`]); applicability
    /// is *not* re-checked per branch.
    pub fn expand_action<B>(
        &self,
        cfg: &mut Configuration,
        action: Action,
        mut visit: impl FnMut(usize, Probability, &Configuration) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        self.expand_action_hashed(cfg, action, 0, |branch, prob, succ, _hash| {
            visit(branch, prob, succ)
        })
    }

    /// [`CounterSystem::expand_action`] with incremental state hashing: the
    /// caller passes the [`CounterSystem::state_hash`] of `cfg` and `visit`
    /// additionally receives the hash of each successor, maintained across
    /// the in-place deltas in O(1) per delta.
    pub fn expand_action_hashed<B>(
        &self,
        cfg: &mut Configuration,
        action: Action,
        hash: u64,
        mut visit: impl FnMut(usize, Probability, &Configuration, u64) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let rule = &self.rules[action.rule.0];
        debug_assert!(
            self.is_applicable(cfg, action),
            "expand of inapplicable {action}"
        );
        let dest_round = self.destination_round(action.rule, action.round);
        let mut base = hash;

        let from_count = cfg.counter(rule.from, action.round);
        base ^= self.loc_key(rule.from, action.round, from_count)
            ^ self.loc_key(rule.from, action.round, from_count - 1);
        cfg.decrement_counter_unchecked(rule.from, action.round);
        for &(var, delta) in &rule.increments {
            let old = cfg.var(var, action.round);
            base ^=
                self.var_key(var, action.round, old) ^ self.var_key(var, action.round, old + delta);
            cfg.add_var(var, action.round, delta);
        }
        let mut flow = ControlFlow::Continue(());
        for &(branch, to, prob) in &rule.branches {
            let old = cfg.counter(to, dest_round);
            let succ_hash =
                base ^ self.loc_key(to, dest_round, old) ^ self.loc_key(to, dest_round, old + 1);
            cfg.add_counter(to, dest_round, 1);
            let result = visit(branch, prob, cfg, succ_hash);
            cfg.decrement_counter_unchecked(to, dest_round);
            if let ControlFlow::Break(b) = result {
                flow = ControlFlow::Break(b);
                break;
            }
        }
        for &(var, delta) in &rule.increments {
            cfg.sub_var_unchecked(var, action.round, delta);
        }
        cfg.add_counter(rule.from, action.round, 1);
        flow
    }

    /// The probabilistic transition function `∆(c, α)`: all outcomes of the
    /// action with their probabilities.  Applicability is validated once,
    /// not once per branch.
    ///
    /// # Errors
    ///
    /// Returns an error if the action is not applicable.
    pub fn outcomes(
        &self,
        cfg: &Configuration,
        action: Action,
    ) -> Result<Vec<Outcome>, CounterError> {
        if !self.is_applicable(cfg, action) {
            return Err(CounterError::NotApplicable {
                action: action.to_string(),
            });
        }
        let mut scratch = cfg.clone();
        let mut out = Vec::with_capacity(self.rules[action.rule.0].branches.len());
        let _ = self.expand_action(&mut scratch, action, |branch, probability, succ| {
            let mut config = succ.clone();
            config.trim();
            out.push(Outcome {
                branch,
                probability,
                config,
            });
            ControlFlow::<()>::Continue(())
        });
        Ok(out)
    }

    /// The rounds in which actions may currently fire: `0 ..= max active
    /// round` (at least round 0).
    pub fn active_rounds(&self, cfg: &Configuration) -> std::ops::RangeInclusive<u32> {
        0..=cfg.max_active_round().unwrap_or(0)
    }

    /// Appends all applicable actions in the configuration to `out`
    /// (cleared first), in `(round, rule)` order.
    pub fn applicable_actions_into(&self, cfg: &Configuration, out: &mut Vec<Action>) {
        out.clear();
        for round in self.active_rounds(cfg) {
            let vars = self.round_vars_ref(cfg, round);
            let counters = cfg.counters_slice(round);
            for (idx, rule) in self.rules.iter().enumerate() {
                let occupied = counters.map_or(0, |c| c[rule.from.0]) >= 1;
                if occupied && rule.guard_holds(vars) {
                    out.push(Action::new(RuleId(idx), round));
                }
            }
        }
    }

    /// Appends all applicable *progress* (non-self-loop) actions to `out`
    /// (cleared first), in `(round, rule)` order.  This is the
    /// allocation-free enumeration used by the explicit-state engine;
    /// self-loops only produce stuttering and are irrelevant for
    /// reachability.
    pub fn progress_actions_into(&self, cfg: &Configuration, out: &mut Vec<Action>) {
        out.clear();
        for round in self.active_rounds(cfg) {
            let Some(counters) = cfg.counters_slice(round) else {
                continue; // an unmaterialised round holds no automata
            };
            let vars = self.round_vars_ref(cfg, round);
            let round_start = out.len();
            for (loc, &count) in counters.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                for &rule_id in &self.progress_rules_from[loc] {
                    if self.rules[rule_id.0].guard_holds(vars) {
                        out.push(Action::new(rule_id, round));
                    }
                }
            }
            // restore global rule order within the round (the per-location
            // scan yields rules grouped by source location)
            out[round_start..].sort_unstable_by_key(|a| a.rule.0);
        }
    }

    /// All applicable actions in the configuration.
    pub fn applicable_actions(&self, cfg: &Configuration) -> Vec<Action> {
        let mut out = Vec::new();
        self.applicable_actions_into(cfg, &mut out);
        out
    }

    /// Applicable actions whose rule is not a self-loop (self-loops only
    /// produce stuttering and are irrelevant for reachability).
    pub fn progress_actions(&self, cfg: &Configuration) -> Vec<Action> {
        let mut out = Vec::new();
        self.progress_actions_into(cfg, &mut out);
        out
    }

    /// Whether no progress action is applicable (the configuration is
    /// terminal up to stuttering).
    pub fn is_terminal(&self, cfg: &Configuration) -> bool {
        for round in self.active_rounds(cfg) {
            let Some(counters) = cfg.counters_slice(round) else {
                continue;
            };
            let vars = self.round_vars_ref(cfg, round);
            for (loc, &count) in counters.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                for &rule_id in &self.progress_rules_from[loc] {
                    if self.rules[rule_id.0].guard_holds(vars) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Number of correct processes currently occupying any of the given
    /// locations in `round`.
    pub fn occupancy(&self, cfg: &Configuration, locs: &[LocId], round: u32) -> u64 {
        cfg.count_in(locs, round)
    }

    /// Renders an action with names resolved.
    pub fn describe_action(&self, action: Action) -> String {
        format!(
            "({}, round {})",
            self.model.rule(action.rule).name(),
            action.round
        )
    }
}

/// The byte-row fast engine for single-round systems.
///
/// In a single-round model every automaton and every variable lives in
/// round 0, so a configuration is exactly one fixed-stride byte row:
/// `locations ++ variables`, one byte per value.  The explicit-state
/// checker runs its entire search on these rows — guard evaluation, action
/// enumeration, delta application and incremental Zobrist hashing all
/// operate on `&[u8]` without ever materialising a [`Configuration`]
/// (states are decoded back only for counterexample reconstruction).
#[derive(Debug, Clone, Copy)]
pub struct RowEngine<'a> {
    sys: &'a CounterSystem,
    num_locations: usize,
    stride: usize,
}

impl<'a> RowEngine<'a> {
    /// A row engine over a single-round counter system.
    ///
    /// # Panics
    ///
    /// Panics if the model is multi-round (rows cannot represent round
    /// switches into later rounds).
    pub fn new(sys: &'a CounterSystem) -> Self {
        assert!(
            !sys.multi_round,
            "the row engine requires a single-round model"
        );
        let num_locations = sys.model.locations().len();
        RowEngine {
            sys,
            num_locations,
            stride: num_locations + sys.model.vars().len(),
        }
    }

    /// Bytes per row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Encodes a round-0 configuration into a row (resized and overwritten).
    ///
    /// # Panics
    ///
    /// Panics if the configuration occupies a round other than 0 or holds a
    /// value above 255.
    pub fn encode_into(&self, cfg: &Configuration, out: &mut Vec<u8>) {
        assert!(
            cfg.max_active_round().unwrap_or(0) == 0,
            "row encoding requires a round-0 configuration"
        );
        out.clear();
        out.resize(self.stride, 0);
        if let Some(counters) = cfg.counters_slice(0) {
            for (i, &v) in counters.iter().enumerate() {
                assert!(v <= u8::MAX as u64, "counter {v} too large for a row");
                out[i] = v as u8;
            }
        }
        if let Some(vars) = cfg.vars_slice(0) {
            for (i, &v) in vars.iter().enumerate() {
                assert!(v <= u8::MAX as u64, "variable {v} too large for a row");
                out[self.num_locations + i] = v as u8;
            }
        }
    }

    /// Decodes a row back into a full configuration.
    pub fn decode(&self, row: &[u8]) -> Configuration {
        decode_row(row, self.num_locations, self.stride - self.num_locations)
    }

    #[inline]
    fn key(&self, slot: usize, value: u8) -> u64 {
        self.sys.zobrist[slot * ZOBRIST_VALUES + value as usize]
    }

    /// The Zobrist hash of a row (XOR of the keys of all non-zero values).
    /// [`RowEngine::for_each_successor`] maintains it incrementally.
    pub fn hash(&self, row: &[u8]) -> u64 {
        let mut hash = 0u64;
        for (slot, &v) in row.iter().enumerate() {
            if v > 0 {
                hash ^= self.key(slot, v);
            }
        }
        hash
    }

    /// Appends the applicable progress actions of the row to `out` (cleared
    /// first), in rule order — the same order the `Configuration`-based
    /// enumeration produces.
    ///
    /// The row fits in a cache line or two, so a linear pass over the
    /// compact `(rule, source slot)` table with one byte test per rule
    /// beats gathering per occupied location and re-sorting.
    pub fn progress_actions_into(&self, row: &[u8], out: &mut Vec<Action>) {
        out.clear();
        let vars = &row[self.num_locations..];
        for &(rule_idx, from) in &self.sys.progress_compact {
            if row[from as usize] == 0 {
                continue;
            }
            let rule = &self.sys.rules[rule_idx as usize];
            if rule
                .guard
                .iter()
                .all(|g| g.rel.holds(g.atom.lhs_value_bytes(vars), g.bound))
            {
                out.push(Action::new(RuleId(rule_idx as usize), 0));
            }
        }
    }

    /// Visits every positive-probability successor row of an applicable
    /// action by applying and undoing byte deltas in place, maintaining the
    /// row's Zobrist hash incrementally.  Mirrors
    /// [`CounterSystem::expand_action_hashed`].
    pub fn for_each_successor<B>(
        &self,
        row: &mut [u8],
        action: Action,
        hash: u64,
        mut visit: impl FnMut(usize, Probability, &[u8], u64) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let rule = &self.sys.rules[action.rule.0];
        let from = rule.from.0;
        debug_assert!(row[from] >= 1, "expand of inapplicable {action}");
        let mut base = hash;
        base ^= self.key(from, row[from]) ^ self.key(from, row[from] - 1);
        row[from] -= 1;
        for &(var, delta) in &rule.increments {
            let slot = self.num_locations + var.0;
            let old = row[slot];
            let new = old as u64 + delta;
            debug_assert!(new <= u8::MAX as u64, "variable overflow in row");
            base ^= self.key(slot, old) ^ self.key(slot, new as u8);
            row[slot] = new as u8;
        }
        let mut flow = ControlFlow::Continue(());
        for &(branch, to, prob) in &rule.branches {
            let slot = to.0;
            let succ_hash = base ^ self.key(slot, row[slot]) ^ self.key(slot, row[slot] + 1);
            row[slot] += 1;
            let result = visit(branch, prob, row, succ_hash);
            row[slot] -= 1;
            if let ControlFlow::Break(b) = result {
                flow = ControlFlow::Break(b);
                break;
            }
        }
        for &(var, delta) in &rule.increments {
            let slot = self.num_locations + var.0;
            row[slot] -= delta as u8;
        }
        row[from] += 1;
        flow
    }
}

/// Decodes a state row (`locations ++ variables`, one byte per value) back
/// into a round-0 configuration.  Shared by [`RowEngine::decode`] and the
/// checker's state store so the row layout is interpreted in exactly one
/// place.
pub fn decode_row(row: &[u8], num_locations: usize, num_vars: usize) -> Configuration {
    assert_eq!(row.len(), num_locations + num_vars, "row length mismatch");
    let mut cfg = Configuration::zero(num_locations, num_vars);
    for (i, &v) in row.iter().enumerate() {
        if v > 0 {
            if i < num_locations {
                cfg.set_counter(LocId(i), 0, v as u64);
            } else {
                cfg.set_var(VarId(i - num_locations), 0, v as u64);
            }
        }
    }
    cfg
}

/// A reusable scratch buffer for successor generation.
///
/// One expander per search loop amortises the action-buffer allocation over
/// the whole exploration: [`Expander::refill`] re-enumerates the applicable
/// progress actions of the current configuration in place, and the buffer is
/// read back via [`Expander::actions`] while the configuration is mutated
/// through [`CounterSystem::expand_action`].
#[derive(Debug, Default)]
pub struct Expander {
    actions: Vec<Action>,
}

impl Expander {
    /// Creates an empty expander.
    pub fn new() -> Self {
        Expander::default()
    }

    /// Re-enumerates the applicable progress actions of `cfg`.
    pub fn refill(&mut self, sys: &CounterSystem, cfg: &Configuration) -> &[Action] {
        sys.progress_actions_into(cfg, &mut self.actions);
        &self.actions
    }

    /// The actions enumerated by the last [`Expander::refill`].
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{small_params, voting_model};

    fn system() -> CounterSystem {
        CounterSystem::new(voting_model(), small_params()).unwrap()
    }

    #[test]
    fn construction_checks_admissibility() {
        let err =
            CounterSystem::new(voting_model(), ParamValuation::new(vec![3, 1, 1, 1])).unwrap_err();
        assert!(matches!(err, CounterError::NotAdmissible { .. }));
        let sys = system();
        assert_eq!(sys.num_processes(), 3);
        assert_eq!(sys.num_coins(), 1);
    }

    #[test]
    fn initial_configurations_cover_all_splits() {
        let sys = system();
        // 3 processes over {I0, I1} -> 4 splits; 1 coin over {IC} -> 1
        let inits = sys.initial_configurations();
        assert_eq!(inits.len(), 4);
        for cfg in &inits {
            assert_eq!(cfg.total_in_round(0), 4); // 3 processes + 1 coin
            assert_eq!(cfg.round_vars(0), vec![0, 0, 0, 0]);
        }
        // round-start configurations distribute over border locations
        let starts = sys.round_start_configurations();
        assert_eq!(starts.len(), 4);
        let unanimous = sys.unanimous_start_configurations(BinValue::Zero);
        assert_eq!(unanimous.len(), 1);
        let j0 = sys.model().location_id("J0").unwrap();
        assert_eq!(unanimous[0].counter(j0, 0), 3);
    }

    #[test]
    fn guard_unlocking_follows_shared_variables() {
        let sys = system();
        let model = sys.model().clone();
        let maj0 = model.rule_id("maj0").unwrap();
        let mut cfg = sys.empty_configuration();
        // quorum is n - t - f = 2
        assert!(!sys.is_unlocked(&cfg, maj0, 0));
        cfg.add_var(model.var_id("v0").unwrap(), 0, 2);
        assert!(sys.is_unlocked(&cfg, maj0, 0));
        // guard of another round still locked
        assert!(!sys.is_unlocked(&cfg, maj0, 1));
    }

    #[test]
    fn apply_moves_one_process_and_updates_variables() {
        let sys = system();
        let model = sys.model().clone();
        let i0 = model.location_id("I0").unwrap();
        let s = model.location_id("S").unwrap();
        let v0 = model.var_id("v0").unwrap();
        let bcast0 = model.rule_id("bcast0").unwrap();

        let mut cfg = sys.empty_configuration();
        cfg.add_counter(i0, 0, 3);
        cfg.add_counter(model.location_id("IC").unwrap(), 0, 1);

        let action = Action::new(bcast0, 0);
        assert!(sys.is_applicable(&cfg, action));
        let next = sys.apply_dirac(&cfg, action).unwrap();
        assert_eq!(next.counter(i0, 0), 2);
        assert_eq!(next.counter(s, 0), 1);
        assert_eq!(next.var(v0, 0), 1);
        // original configuration untouched
        assert_eq!(cfg.counter(i0, 0), 3);
    }

    #[test]
    fn apply_rejects_locked_or_empty_source() {
        let sys = system();
        let model = sys.model().clone();
        let maj0 = model.rule_id("maj0").unwrap();
        let cfg = sys.empty_configuration();
        let err = sys.apply_dirac(&cfg, Action::new(maj0, 0)).unwrap_err();
        assert!(matches!(err, CounterError::NotApplicable { .. }));
    }

    #[test]
    fn apply_rejects_missing_branch() {
        let sys = system();
        let model = sys.model().clone();
        let bcast0 = model.rule_id("bcast0").unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.add_counter(model.location_id("I0").unwrap(), 0, 1);
        let err = sys.apply(&cfg, Action::new(bcast0, 0), 5).unwrap_err();
        assert!(matches!(err, CounterError::NoSuchBranch { .. }));
    }

    #[test]
    fn round_switch_moves_to_next_round_in_multi_round_models() {
        let sys = system();
        let model = sys.model().clone();
        let e0 = model.location_id("E0").unwrap();
        let j0 = model.location_id("J0").unwrap();
        let switch = model
            .rule_ids()
            .find(|&r| model.rule(r).is_round_switch() && model.rule(r).from() == e0)
            .unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.add_counter(e0, 0, 1);
        let next = sys.apply_dirac(&cfg, Action::new(switch, 0)).unwrap();
        assert_eq!(next.counter(e0, 0), 0);
        assert_eq!(next.counter(j0, 1), 1);
        assert_eq!(next.max_active_round(), Some(1));
    }

    #[test]
    fn round_switch_stays_in_round_for_single_round_models() {
        let rd = voting_model().single_round().unwrap();
        let sys = CounterSystem::new(rd, small_params()).unwrap();
        let model = sys.model().clone();
        let e0 = model.location_id("E0").unwrap();
        let j0_copy = model.location_id("J0'").unwrap();
        let switch = model
            .rule_ids()
            .find(|&r| model.rule(r).is_round_switch() && model.rule(r).from() == e0)
            .unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.add_counter(e0, 0, 1);
        let next = sys.apply_dirac(&cfg, Action::new(switch, 0)).unwrap();
        assert_eq!(next.counter(j0_copy, 0), 1);
        assert_eq!(next.max_active_round(), Some(0));
    }

    #[test]
    fn probabilistic_outcomes_enumerate_branches() {
        let sys = system();
        let model = sys.model().clone();
        let toss = model.rule_id("toss").unwrap();
        let ic = model.location_id("IC").unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.add_counter(ic, 0, 1);
        let outcomes = sys.outcomes(&cfg, Action::new(toss, 0)).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.probability == Probability::HALF));
        let h0 = model.location_id("H0").unwrap();
        let h1 = model.location_id("H1").unwrap();
        assert_eq!(outcomes[0].config.counter(h0, 0), 1);
        assert_eq!(outcomes[1].config.counter(h1, 0), 1);
    }

    #[test]
    fn outcomes_match_apply_per_branch() {
        let sys = system();
        let model = sys.model().clone();
        let toss = model.rule_id("toss").unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.add_counter(model.location_id("IC").unwrap(), 0, 1);
        let action = Action::new(toss, 0);
        for outcome in sys.outcomes(&cfg, action).unwrap() {
            let via_apply = sys.apply(&cfg, action, outcome.branch).unwrap();
            assert_eq!(outcome.config, via_apply);
        }
    }

    #[test]
    fn expand_action_restores_the_configuration() {
        let sys = system();
        let model = sys.model().clone();
        let bcast0 = model.rule_id("bcast0").unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.add_counter(model.location_id("I0").unwrap(), 0, 2);
        let snapshot = cfg.clone();
        let action = Action::new(bcast0, 0);
        let expected = sys.apply_dirac(&cfg, action).unwrap();
        let mut seen = 0;
        let _ = sys.expand_action(&mut cfg, action, |branch, prob, succ| {
            assert_eq!(branch, 0);
            assert!(prob.is_one());
            assert_eq!(*succ, expected);
            seen += 1;
            ControlFlow::<()>::Continue(())
        });
        assert_eq!(seen, 1);
        assert_eq!(cfg, snapshot);
    }

    #[test]
    fn expand_action_early_exit_still_restores() {
        let sys = system();
        let model = sys.model().clone();
        let toss = model.rule_id("toss").unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.add_counter(model.location_id("IC").unwrap(), 0, 1);
        let snapshot = cfg.clone();
        let flow = sys.expand_action(&mut cfg, Action::new(toss, 0), |branch, _, _| {
            ControlFlow::Break(branch)
        });
        assert_eq!(flow, ControlFlow::Break(0));
        assert_eq!(cfg, snapshot);
    }

    #[test]
    fn applicable_and_progress_actions() {
        let sys = system();
        let inits = sys.initial_configurations();
        // all processes with value 0: applicable actions are bcast0 x?, and the toss
        let all_zero = inits
            .iter()
            .find(|c| c.counter(sys.model().location_id("I0").unwrap(), 0) == 3)
            .unwrap();
        let actions = sys.applicable_actions(all_zero);
        let names: Vec<&str> = actions
            .iter()
            .map(|a| sys.model().rule(a.rule).name())
            .collect();
        assert!(names.contains(&"bcast0"));
        assert!(names.contains(&"toss"));
        assert!(!names.contains(&"bcast1"));
        assert!(!sys.is_terminal(all_zero));
        // empty configuration is terminal
        assert!(sys.is_terminal(&sys.empty_configuration()));
    }

    #[test]
    fn expander_reuses_its_buffer_and_matches_the_allocating_api() {
        let sys = system();
        let mut expander = Expander::new();
        for cfg in sys.initial_configurations() {
            assert_eq!(expander.refill(&sys, &cfg), sys.progress_actions(&cfg));
        }
        assert!(expander.refill(&sys, &sys.empty_configuration()).is_empty());
    }

    #[test]
    fn describe_action_uses_rule_names() {
        let sys = system();
        let bcast0 = sys.model().rule_id("bcast0").unwrap();
        assert_eq!(
            sys.describe_action(Action::new(bcast0, 2)),
            "(bcast0, round 2)"
        );
    }

    #[test]
    fn shared_state_is_sync() {
        // the explorer shares one system (and row engines over it) across
        // worker threads; this must never regress to interior mutability
        fn assert_sync<T: Sync>() {}
        assert_sync::<CounterSystem>();
        assert_sync::<RowEngine<'static>>();
        assert_sync::<Configuration>();
    }

    #[test]
    #[should_panic(expected = "single-round")]
    fn row_engine_rejects_multi_round_models() {
        let sys = system();
        let _ = RowEngine::new(&sys);
    }

    #[test]
    fn row_engine_matches_the_configuration_semantics() {
        let rd = voting_model().single_round().unwrap();
        let sys = CounterSystem::new(rd, small_params()).unwrap();
        let engine = RowEngine::new(&sys);
        let mut row = Vec::new();
        for cfg in sys.round_start_configurations() {
            engine.encode_into(&cfg, &mut row);
            assert_eq!(row.len(), engine.stride());
            // encode/decode round-trips
            assert_eq!(engine.decode(&row), cfg);
            // row hash equals the configuration hash
            assert_eq!(engine.hash(&row), sys.state_hash(&cfg));
            // action enumeration agrees with the configuration-based one
            let mut actions = Vec::new();
            engine.progress_actions_into(&row, &mut actions);
            assert_eq!(actions, sys.progress_actions(&cfg));
            // successors agree with `outcomes` per action and branch, with
            // correctly maintained hashes, and the row is restored after
            let hash = engine.hash(&row);
            for action in actions {
                let outcomes = sys.outcomes(&cfg, action).unwrap();
                let snapshot = row.clone();
                let mut seen = 0;
                let _ =
                    engine.for_each_successor(&mut row, action, hash, |branch, prob, succ, h| {
                        let outcome = &outcomes[seen];
                        assert_eq!(branch, outcome.branch);
                        assert_eq!(prob, outcome.probability);
                        assert_eq!(engine.decode(succ), outcome.config);
                        assert_eq!(h, sys.state_hash(&outcome.config));
                        seen += 1;
                        ControlFlow::<()>::Continue(())
                    });
                assert_eq!(seen, outcomes.len());
                assert_eq!(row, snapshot);
            }
        }
    }
}
