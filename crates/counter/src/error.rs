//! Errors of the counter-system layer.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing or stepping a counter system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterError {
    /// The parameter valuation violates the resilience condition of the
    /// model's environment.
    NotAdmissible { valuation: String },
    /// The requested action is not applicable in the given configuration.
    NotApplicable { action: String },
    /// A branch index does not exist for the rule of an action.
    NoSuchBranch { action: String, branch: usize },
    /// A schedule step failed to apply.
    ScheduleNotApplicable { position: usize },
}

impl fmt::Display for CounterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterError::NotAdmissible { valuation } => {
                write!(
                    f,
                    "parameter valuation {valuation} violates the resilience condition"
                )
            }
            CounterError::NotApplicable { action } => {
                write!(f, "action {action} is not applicable")
            }
            CounterError::NoSuchBranch { action, branch } => {
                write!(f, "action {action} has no branch {branch}")
            }
            CounterError::ScheduleNotApplicable { position } => {
                write!(f, "schedule step {position} is not applicable")
            }
        }
    }
}

impl Error for CounterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            CounterError::NotAdmissible {
                valuation: "(3, 1, 1, 1)".into(),
            },
            CounterError::NotApplicable {
                action: "(r3, 0)".into(),
            },
            CounterError::NoSuchBranch {
                action: "(toss, 0)".into(),
                branch: 7,
            },
            CounterError::ScheduleNotApplicable { position: 2 },
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
