//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! provides API-compatible `Rng` / `SeedableRng` traits and an `StdRng`
//! backed by SplitMix64.  Only deterministic, seeded use is supported (all
//! call sites in the workspace seed explicitly), and only integer
//! `gen_range` over half-open and inclusive ranges is implemented.

use std::ops::{Range, RangeInclusive};

/// A source of randomness.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value in the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: IntRange<T>,
    {
        let (low, span) = range.bounds();
        assert!(span > 0, "cannot sample from an empty range");
        // Lemire-style unbiased rejection sampling over the span.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return T::from_offset(low, v % span);
            }
        }
    }

    /// A uniformly distributed boolean with probability `p` of being true.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`Rng::gen_range`] can produce.
pub trait UniformInt: Copy {
    /// Converts to the `u64` sampling domain.
    fn to_u64(self) -> u64;
    /// Rebuilds a value as `low + offset`.
    fn from_offset(low: Self, offset: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_offset(low: Self, offset: u64) -> Self {
                low + offset as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait IntRange<T: UniformInt> {
    /// The lower bound and the number of admissible values.
    fn bounds(&self) -> (T, u64);
}

impl<T: UniformInt> IntRange<T> for Range<T> {
    fn bounds(&self) -> (T, u64) {
        (
            self.start,
            self.end.to_u64().wrapping_sub(self.start.to_u64()),
        )
    }
}

impl<T: UniformInt> IntRange<T> for RangeInclusive<T> {
    fn bounds(&self) -> (T, u64) {
        (
            *self.start(),
            self.end()
                .to_u64()
                .wrapping_sub(self.start().to_u64())
                .wrapping_add(1),
        )
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic RNG (SplitMix64), standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_rngs_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
            let y: u8 = rng.gen_range(0..=1);
            assert!(y <= 1);
            let z: u64 = rng.gen_range(5..6);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
