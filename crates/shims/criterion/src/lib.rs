//! Offline shim for the subset of the `criterion` API used by this workspace.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! provides an API-compatible micro-benchmark harness: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_function` /
//! `bench_with_input` and `Bencher::iter`.  Each benchmark is warmed up and
//! then sampled `sample_size` times; the mean, minimum and maximum wall-clock
//! times are printed per benchmark.
//!
//! When the `BENCH_JSON` environment variable is set, a machine-readable
//! summary (one entry per benchmark with nanosecond statistics) is written to
//! that path on exit, so CI can track a performance trajectory across PRs.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One recorded benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Fully qualified benchmark id (`group/function/param`).
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample in nanoseconds.
    pub max_ns: f64,
}

/// The benchmark driver, standing in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Measurement>,
    metrics: Vec<(String, f64)>,
}

impl Criterion {
    /// Creates a driver.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let m = run_benchmark(&id, 10, f);
        self.results.push(m);
        self
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Records a named scalar metric (a hit rate, a count, a ratio)
    /// alongside the timing measurements.  Metrics are printed and written
    /// to the `BENCH_JSON` summary as `{"id": ..., "value": ...}` entries —
    /// an extension over upstream criterion used by benches that report
    /// cache effectiveness next to wall-clock times.
    pub fn metric(&mut self, id: impl Into<String>, value: f64) -> &mut Self {
        let id = id.into();
        println!("{id:<60} value {value:>12.4}");
        self.metrics.push((id, value));
        self
    }

    /// All scalar metrics recorded so far.
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// Writes the JSON summary if `BENCH_JSON` is set.  Called by
    /// [`criterion_main!`]; harmless to call twice.
    pub fn final_summary(&self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        let mut out = String::from("[\n");
        let mut first = true;
        for m in &self.results {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"samples\": {}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}}}",
                m.id.replace('"', "'"),
                m.samples,
                m.mean_ns,
                m.min_ns,
                m.max_ns
            ));
        }
        for (id, value) in &self.metrics {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"value\": {value:.6}}}",
                id.replace('"', "'"),
            ));
        }
        out.push_str("\n]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote benchmark summary to {path}");
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a function identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let m = run_benchmark(&full, self.sample_size, &mut f);
        self.criterion.results.push(m);
        self
    }

    /// Benchmarks a function over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let m = run_benchmark(&full, self.sample_size, |b| f(b, input));
        self.criterion.results.push(m);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark id of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Conversion of ids and plain strings into benchmark ids.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing context passed to benchmark bodies.
pub struct Bencher {
    samples: Vec<Duration>,
    pending: usize,
}

impl Bencher {
    /// Times one sample of the routine (one warm-up call plus `pending`
    /// timed iterations, recording the per-iteration time).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, also forces lazy initialisation
        for _ in 0..self.pending {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) -> Measurement {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        pending: sample_size,
    };
    f(&mut bencher);
    let ns: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() * 1e9)
        .collect();
    let (mean, min, max) = if ns.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        (
            ns.iter().sum::<f64>() / ns.len() as f64,
            ns.iter().cloned().fold(f64::INFINITY, f64::min),
            ns.iter().cloned().fold(0.0, f64::max),
        )
    };
    println!(
        "{id:<60} mean {:>12} min {:>12} max {:>12} ({} samples)",
        format_ns(mean),
        format_ns(min),
        format_ns(max),
        ns.len()
    );
    Measurement {
        id: id.to_string(),
        samples: ns.len(),
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::new();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_measurements() {
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.measurements().len(), 1);
        assert_eq!(c.measurements()[0].samples, 10);
        assert!(c.measurements()[0].mean_ns >= 0.0);
    }

    #[test]
    fn metrics_are_recorded_next_to_measurements() {
        let mut c = Criterion::new();
        c.metric("cache/hit_rate", 0.75);
        assert_eq!(c.metrics(), &[("cache/hit_rate".to_string(), 0.75)]);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert_eq!(c.measurements()[0].id, "g/f/7");
        assert_eq!(c.measurements()[0].samples, 3);
    }
}
