//! The adaptive-adversary attack of Sect. II.
//!
//! The system has three correct processes `A1`, `A2`, `B1` (with inputs 0, 0,
//! 1) and one Byzantine process.  In every round the adversary
//!
//! 1. withholds all messages addressed to `A2` while letting `A1` and `B1`
//!    run to completion with `values = {0, 1}` (so their new estimate is the
//!    common coin `s`), thereby learning `s`;
//! 2. then delivers to `A2` only messages carrying `1 - s` (plus forged
//!    Byzantine messages), so that `A2` ends the round with
//!    `values = {1 - s}` and estimate `1 - s`.
//!
//! The estimates therefore stay split forever and no process ever decides.
//! Against the repaired protocol the first step fails: `A1` and `B1` cannot
//! query the coin before the outcome is bound, so the adversary never learns
//! `s` in time and has to fall back to fair scheduling, after which the
//! protocol terminates quickly.

use crate::coin::CommonCoin;
use crate::network::Network;
use crate::protocol::{ConsensusProcess, Process, ProtocolKind};
use crate::types::{Message, MessageKind, ProcessId, Value};

const A1: ProcessId = ProcessId(0);
const A2: ProcessId = ProcessId(1);
const B1: ProcessId = ProcessId(2);
const BYZ: ProcessId = ProcessId(3);
const N: usize = 4;
const T: usize = 1;

/// The outcome of an adaptive-adversary execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Protocol variant that was attacked.
    pub protocol: String,
    /// Number of rounds the adversary played.
    pub rounds_executed: u32,
    /// Decisions of `A1`, `A2`, `B1`.
    pub decisions: Vec<Option<Value>>,
    /// Estimates of `A1`, `A2`, `B1` after the last round.
    pub estimates: Vec<Value>,
    /// Number of rounds in which the adversary learned the coin before `A2`
    /// had fixed its `values` set (i.e. rounds where the attack step worked).
    pub rounds_with_early_coin: u32,
}

impl AttackOutcome {
    /// Whether every correct process decided.
    pub fn terminated(&self) -> bool {
        self.decisions.iter().all(|d| d.is_some())
    }

    /// Whether the correct estimates are still split.
    pub fn estimates_split(&self) -> bool {
        self.estimates.iter().any(|&e| e != self.estimates[0])
    }
}

/// Whether a message only carries (supports) the given value.
fn message_carries(kind: MessageKind, v: Value) -> bool {
    match kind {
        MessageKind::Est(x) | MessageKind::Aux(x) => x == v,
        MessageKind::Conf { zero, one } => {
            (v == Value::ZERO && zero && !one) || (v == Value::ONE && one && !zero)
        }
    }
}

fn byz_round_messages(to: ProcessId, round: u32, values: &[Value]) -> Vec<Message> {
    let mut out = Vec::new();
    for &v in values {
        out.push(Message::new(BYZ, to, round, MessageKind::Est(v)));
        out.push(Message::new(BYZ, to, round, MessageKind::Aux(v)));
        out.push(Message::new(
            BYZ,
            to,
            round,
            MessageKind::Conf {
                zero: v == Value::ZERO,
                one: v == Value::ONE,
            },
        ));
    }
    // when the adversary supports both values it also forges a full-set CONF
    if values.contains(&Value::ZERO) && values.contains(&Value::ONE) {
        out.push(Message::new(
            BYZ,
            to,
            round,
            MessageKind::Conf {
                zero: true,
                one: true,
            },
        ));
    }
    out
}

/// Delivers round-`round` messages to `target`, preferring messages that
/// carry `preferred` (if given), until the target completes the round or no
/// matching message is left.  Returns whether the target completed the round.
fn drive_target(
    target: ProcessId,
    round: u32,
    preferred: Option<Value>,
    restrict_to_preferred: bool,
    processes: &mut [Process],
    network: &mut Network,
    coin: &mut CommonCoin,
) -> bool {
    loop {
        if processes[target.0].has_completed_round(round) {
            return true;
        }
        let pick = preferred
            .and_then(|v| {
                network.deliver_matching(|m| {
                    m.to == target && m.round == round && message_carries(m.kind, v)
                })
            })
            .or_else(|| {
                if restrict_to_preferred {
                    None
                } else {
                    network.deliver_matching(|m| m.to == target && m.round == round)
                }
            });
        let Some(msg) = pick else {
            return processes[target.0].has_completed_round(round);
        };
        let out = processes[target.0].deliver(msg, coin);
        network.send_all(out);
        network.drop_addressed_to(BYZ);
    }
}

/// Fairly delivers every message of rounds `<= round` (used when the attack
/// step fails and as the end-of-round flush of withheld messages).
fn deliver_everything(
    round: u32,
    processes: &mut [Process],
    network: &mut Network,
    coin: &mut CommonCoin,
) {
    loop {
        let Some(msg) = network.deliver_matching(|m| m.round <= round && m.to != BYZ) else {
            return;
        };
        let out = processes[msg.to.0].deliver(msg, coin);
        network.send_all(out);
        network.drop_addressed_to(BYZ);
    }
}

/// Runs the adaptive adversary for up to `max_rounds` rounds against the
/// given protocol variant.
pub fn run_adaptive_attack(kind: ProtocolKind, max_rounds: u32, seed: u64) -> AttackOutcome {
    run_adaptive_attack_traced(kind, max_rounds, seed, false)
}

/// Like [`run_adaptive_attack`], optionally printing a per-round trace.
pub fn run_adaptive_attack_traced(
    kind: ProtocolKind,
    max_rounds: u32,
    seed: u64,
    trace: bool,
) -> AttackOutcome {
    let mut coin = CommonCoin::new(seed);
    let inputs = [Value::ZERO, Value::ZERO, Value::ONE];
    let mut processes: Vec<Process> = inputs
        .iter()
        .enumerate()
        .map(|(i, &v)| Process::new(ProcessId(i), kind, N, T, v))
        .collect();
    let mut network = Network::new();
    for p in &mut processes {
        let msgs = p.start();
        network.send_all(msgs);
    }
    network.drop_addressed_to(BYZ);

    let mut rounds_with_early_coin = 0;
    let mut round = 0;
    while round < max_rounds && processes.iter().any(|p| p.decided().is_none()) {
        // 1. forged Byzantine traffic supporting both values towards A1 / B1
        network.send_all(byz_round_messages(A1, round, &[Value::ZERO, Value::ONE]));
        network.send_all(byz_round_messages(B1, round, &[Value::ZERO, Value::ONE]));

        // 2. let A1 and B1 finish the round; A1 BV-delivers 0 first, B1
        //    delivers 1 first, so one correct AUX message exists for each
        //    value once the coin is revealed
        drive_target(
            A1,
            round,
            Some(Value::ZERO),
            false,
            &mut processes,
            &mut network,
            &mut coin,
        );
        drive_target(
            B1,
            round,
            Some(Value::ONE),
            false,
            &mut processes,
            &mut network,
            &mut coin,
        );

        // 3. if the coin leaked before A2 fixed its values, steer A2 to 1 - s
        if let Some(s) = coin.revealed_value(round) {
            if !processes[A2.0].has_completed_round(round) {
                rounds_with_early_coin += 1;
                let target_value = s.flip();
                network.send_all(byz_round_messages(A2, round, &[target_value]));
                drive_target(
                    A2,
                    round,
                    Some(target_value),
                    true,
                    &mut processes,
                    &mut network,
                    &mut coin,
                );
            }
        }

        // 4. the adversary must stay fair: everything still in flight for
        //    this round (including A2's withheld messages) is delivered now;
        //    completed rounds ignore the stale traffic
        deliver_everything(round, &mut processes, &mut network, &mut coin);
        if trace {
            println!(
                "round {round}: coin_revealed={} ests={:?} decided={:?} current_rounds={:?} inflight={}",
                coin.is_revealed(round),
                processes.iter().map(|p| p.estimate()).collect::<Vec<_>>(),
                processes.iter().map(|p| p.decided()).collect::<Vec<_>>(),
                processes
                    .iter()
                    .map(|p| p.current_round())
                    .collect::<Vec<_>>(),
                network.len(),
            );
        }
        round += 1;
    }

    AttackOutcome {
        protocol: format!("{kind:?}"),
        rounds_executed: round,
        decisions: processes.iter().map(|p| p.decided()).collect(),
        estimates: processes.iter().map(|p| p.estimate()).collect(),
        rounds_with_early_coin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_attack_prevents_mmr14_from_terminating() {
        for seed in [1u64, 7, 42] {
            let outcome = run_adaptive_attack(ProtocolKind::Mmr14, 30, seed);
            assert!(!outcome.terminated(), "seed {seed}");
            assert_eq!(outcome.rounds_executed, 30);
            assert!(outcome.estimates_split(), "seed {seed}");
            // in (essentially) every round the adversary learned the coin
            // before A2 committed
            assert!(outcome.rounds_with_early_coin >= 28, "seed {seed}");
        }
    }

    #[test]
    fn the_fixed_protocol_survives_the_same_adversary() {
        for seed in [1u64, 7, 42] {
            let outcome = run_adaptive_attack(ProtocolKind::Fixed, 30, seed);
            assert!(outcome.terminated(), "seed {seed}: {outcome:?}");
            assert!(outcome.rounds_executed < 30, "seed {seed}");
            // the adversary never learns the coin early
            assert_eq!(outcome.rounds_with_early_coin, 0, "seed {seed}");
            // agreement among the decided values
            let first = outcome.decisions[0];
            assert!(outcome.decisions.iter().all(|d| *d == first));
        }
    }

    #[test]
    fn attack_outcome_accessors() {
        let outcome = AttackOutcome {
            protocol: "Mmr14".to_string(),
            rounds_executed: 5,
            decisions: vec![None, None, None],
            estimates: vec![Value::ZERO, Value::ONE, Value::ZERO],
            rounds_with_early_coin: 5,
        };
        assert!(!outcome.terminated());
        assert!(outcome.estimates_split());
    }
}
