//! Executable implementations of MMR14 (Fig. 1) and of the repaired protocol.

use crate::coin::CommonCoin;
use crate::types::{broadcast, Message, MessageKind, ProcessId, Value};
use std::collections::{BTreeSet, HashMap};

/// Which wait condition the process uses before querying the common coin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The original MMR14 protocol of Fig. 1: any `n - t` AUX messages with
    /// values in `bin_values` release the coin query.
    Mmr14,
    /// The repaired protocol (the fix deployed in HoneyBadger/Dumbo): after
    /// computing `values`, a process broadcasts a `CONF` message carrying
    /// that set and queries the coin only after receiving `n - t` `CONF`
    /// messages whose contents lie inside its own `bin_values`; `values` is
    /// then the union of those announcements.  By the time the first correct
    /// process sees the coin, the outcome of the round is bound.
    Fixed,
}

/// Per-round bookkeeping of a correct process.
#[derive(Debug, Default, Clone)]
struct RoundState {
    echoed: [bool; 2],
    bin_values: [bool; 2],
    aux_sent: Option<Value>,
    est_senders: [BTreeSet<ProcessId>; 2],
    aux_senders: [BTreeSet<ProcessId>; 2],
    conf_sent: Option<[bool; 2]>,
    conf_received: HashMap<ProcessId, [bool; 2]>,
    completed: bool,
}

/// A correct process running MMR14 or its fixed variant.
#[derive(Debug, Clone)]
pub struct Process {
    id: ProcessId,
    kind: ProtocolKind,
    n: usize,
    t: usize,
    est: Value,
    decided: Option<Value>,
    decided_round: Option<u32>,
    round: u32,
    started: bool,
    rounds: HashMap<u32, RoundState>,
}

/// Convenience alias constructor for the original protocol.
pub struct Mmr14Process;

/// Convenience alias constructor for the repaired protocol.
pub struct FixedProcess;

impl Mmr14Process {
    /// Creates an MMR14 process.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(id: ProcessId, n: usize, t: usize, input: Value) -> Process {
        Process::new(id, ProtocolKind::Mmr14, n, t, input)
    }
}

impl FixedProcess {
    /// Creates a repaired-protocol process.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(id: ProcessId, n: usize, t: usize, input: Value) -> Process {
        Process::new(id, ProtocolKind::Fixed, n, t, input)
    }
}

/// Trait kept for API symmetry with the counter-system adversaries.
pub trait ConsensusProcess {
    /// The process identifier.
    fn id(&self) -> ProcessId;
    /// The current estimate.
    fn estimate(&self) -> Value;
    /// The decided value, if any.
    fn decided(&self) -> Option<Value>;
}

impl ConsensusProcess for Process {
    fn id(&self) -> ProcessId {
        self.id
    }

    fn estimate(&self) -> Value {
        self.est
    }

    fn decided(&self) -> Option<Value> {
        self.decided
    }
}

impl Process {
    /// Creates a correct process with the given input value.
    pub fn new(id: ProcessId, kind: ProtocolKind, n: usize, t: usize, input: Value) -> Self {
        Process {
            id,
            kind,
            n,
            t,
            est: input,
            decided: None,
            decided_round: None,
            round: 0,
            started: false,
            rounds: HashMap::new(),
        }
    }

    /// The protocol variant.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The round the process is currently executing.
    pub fn current_round(&self) -> u32 {
        self.round
    }

    /// The round in which the process decided, if any.
    pub fn decided_round(&self) -> Option<u32> {
        self.decided_round
    }

    /// Whether the process has finished the given round.
    pub fn has_completed_round(&self, round: u32) -> bool {
        self.rounds
            .get(&round)
            .map(|r| r.completed)
            .unwrap_or(false)
    }

    /// Starts the protocol (round 0), returning the initial EST broadcasts.
    pub fn start(&mut self) -> Vec<Message> {
        if self.started {
            return Vec::new();
        }
        self.started = true;
        self.begin_round(0)
    }

    fn begin_round(&mut self, round: u32) -> Vec<Message> {
        self.round = round;
        let est = self.est;
        let state = self.rounds.entry(round).or_default();
        state.echoed[est.0 as usize] = true;
        broadcast(self.id, self.n, round, MessageKind::Est(est))
    }

    /// Handles a delivered message.  Returns the messages this triggers,
    /// including the EST broadcasts of the next round if the current round
    /// completes.
    pub fn deliver(&mut self, msg: Message, coin: &mut CommonCoin) -> Vec<Message> {
        let state = self.rounds.entry(msg.round).or_default();
        match msg.kind {
            MessageKind::Est(v) => {
                state.est_senders[v.0 as usize].insert(msg.from);
            }
            MessageKind::Aux(v) => {
                state.aux_senders[v.0 as usize].insert(msg.from);
            }
            MessageKind::Conf { zero, one } => {
                state.conf_received.insert(msg.from, [zero, one]);
            }
        }
        self.step(coin)
    }

    /// Re-evaluates the wait conditions of the current round.
    pub fn step(&mut self, coin: &mut CommonCoin) -> Vec<Message> {
        let mut out = Vec::new();
        if !self.started {
            return out;
        }
        let round = self.round;
        let (n, t, id) = (self.n, self.t, self.id);
        let state = self.rounds.entry(round).or_default();
        if state.completed {
            return out;
        }

        // BV-broadcast: echo a value supported by t + 1 EST messages
        for v in [Value::ZERO, Value::ONE] {
            let idx = v.0 as usize;
            if !state.echoed[idx] && state.est_senders[idx].len() > t {
                state.echoed[idx] = true;
                out.extend(broadcast(id, n, round, MessageKind::Est(v)));
            }
        }
        // BV-deliver: add a value supported by 2t + 1 EST messages to
        // bin_values; broadcast AUX for the first delivered value
        for v in [Value::ZERO, Value::ONE] {
            let idx = v.0 as usize;
            if !state.bin_values[idx] && state.est_senders[idx].len() > 2 * t {
                state.bin_values[idx] = true;
                if state.aux_sent.is_none() {
                    state.aux_sent = Some(v);
                    out.extend(broadcast(id, n, round, MessageKind::Aux(v)));
                }
            }
        }
        // AUX wait (line 6 of Fig. 1)
        if let Some(values) = self.aux_wait_values(round) {
            match self.kind {
                ProtocolKind::Mmr14 => {
                    out.extend(self.finish_round(round, &values, coin));
                }
                ProtocolKind::Fixed => {
                    // broadcast CONF(values) and wait for a quorum of
                    // announcements before touching the coin
                    let state = self.rounds.entry(round).or_default();
                    if state.conf_sent.is_none() {
                        let set = [values.contains(&Value::ZERO), values.contains(&Value::ONE)];
                        state.conf_sent = Some(set);
                        // the own announcement counts towards the quorum
                        state.conf_received.insert(id, set);
                        out.extend(broadcast(
                            id,
                            n,
                            round,
                            MessageKind::Conf {
                                zero: set[0],
                                one: set[1],
                            },
                        ));
                    }
                }
            }
        }
        // CONF wait of the repaired protocol
        if self.kind == ProtocolKind::Fixed {
            if let Some(values) = self.conf_wait_values(round) {
                out.extend(self.finish_round(round, &values, coin));
            }
        }
        out
    }

    /// Queries the coin and applies the estimate/decision rule of Fig. 1.
    fn finish_round(
        &mut self,
        round: u32,
        values: &[Value],
        coin: &mut CommonCoin,
    ) -> Vec<Message> {
        let state = self.rounds.entry(round).or_default();
        if state.completed {
            return Vec::new();
        }
        let s = coin.query(round);
        let state = self.rounds.get_mut(&round).expect("state exists");
        state.completed = true;
        if values.len() == 1 {
            let v = values[0];
            self.est = v;
            if v == s && self.decided.is_none() {
                self.decided = Some(v);
                self.decided_round = Some(round);
            }
        } else {
            self.est = s;
        }
        self.begin_round(round + 1)
    }

    /// Evaluates the CONF wait condition of the repaired protocol: once
    /// `n - t` processes have announced `values` sets contained in this
    /// process's `bin_values`, returns the union of those announcements.
    fn conf_wait_values(&self, round: u32) -> Option<Vec<Value>> {
        let state = self.rounds.get(&round)?;
        state.conf_sent?;
        if state.completed {
            return None;
        }
        let quorum = self.n - self.t;
        let accepted: Vec<&[bool; 2]> = state
            .conf_received
            .values()
            .filter(|set| (!set[0] || state.bin_values[0]) && (!set[1] || state.bin_values[1]))
            .collect();
        if accepted.len() < quorum {
            return None;
        }
        let mut union = [false, false];
        for set in accepted {
            union[0] |= set[0];
            union[1] |= set[1];
        }
        let mut values = Vec::new();
        if union[0] {
            values.push(Value::ZERO);
        }
        if union[1] {
            values.push(Value::ONE);
        }
        if values.is_empty() {
            None
        } else {
            Some(values)
        }
    }

    /// Evaluates the AUX wait condition; returns the `values` set when the
    /// process may proceed to the coin query.
    fn aux_wait_values(&self, round: u32) -> Option<Vec<Value>> {
        let state = self.rounds.get(&round)?;
        let quorum = self.n - self.t;
        let accepted: Vec<Value> = [Value::ZERO, Value::ONE]
            .into_iter()
            .filter(|v| state.bin_values[v.0 as usize])
            .collect();
        let senders_of = |v: Value| state.aux_senders[v.0 as usize].len();
        let distinct: BTreeSet<ProcessId> = accepted
            .iter()
            .flat_map(|v| state.aux_senders[v.0 as usize].iter().copied())
            .collect();
        if distinct.len() >= quorum {
            let values: Vec<Value> = accepted
                .into_iter()
                .filter(|&v| senders_of(v) > 0)
                .collect();
            if values.is_empty() {
                None
            } else {
                Some(values)
            }
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver_all(p: &mut Process, msgs: &[Message], coin: &mut CommonCoin) -> Vec<Message> {
        let mut out = Vec::new();
        for m in msgs {
            if m.to == p.id() {
                out.extend(p.deliver(*m, coin));
            }
        }
        out
    }

    #[test]
    fn unanimous_inputs_decide_when_the_coin_agrees() {
        // pick a seed whose round-0 coin is 0
        let seed = (0..100u64)
            .find(|&s| CommonCoin::new(s).query(0) == Value::ZERO)
            .unwrap();
        let mut coin = CommonCoin::new(seed);

        let n = 4;
        let t = 1;
        let mut procs: Vec<Process> = (0..3)
            .map(|i| Mmr14Process::new(ProcessId(i), n, t, Value::ZERO))
            .collect();
        let mut inflight: Vec<Message> = Vec::new();
        for p in &mut procs {
            inflight.extend(p.start());
        }
        // deliver everything repeatedly until quiescent
        for _ in 0..10 {
            let msgs = std::mem::take(&mut inflight);
            for proc in procs.iter_mut() {
                inflight.extend(deliver_all(proc, &msgs, &mut coin));
            }
            if inflight.is_empty() {
                break;
            }
        }
        for p in &procs {
            assert_eq!(p.decided(), Some(Value::ZERO), "{}", p.id());
            assert_eq!(p.decided_round(), Some(0));
            assert!(p.current_round() >= 1);
        }
    }

    #[test]
    fn echo_amplification_requires_t_plus_1_senders() {
        let mut coin = CommonCoin::new(3);
        let mut p = Mmr14Process::new(ProcessId(0), 4, 1, Value::ZERO);
        let _ = p.start();
        // one EST(1) is not enough to echo
        let out = p.deliver(
            Message::new(ProcessId(2), ProcessId(0), 0, MessageKind::Est(Value::ONE)),
            &mut coin,
        );
        assert!(out.is_empty());
        // the second EST(1) triggers the echo broadcast of value 1
        let out = p.deliver(
            Message::new(ProcessId(3), ProcessId(0), 0, MessageKind::Est(Value::ONE)),
            &mut coin,
        );
        assert!(out
            .iter()
            .all(|m| matches!(m.kind, MessageKind::Est(Value::ONE))));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn fixed_process_queries_the_coin_only_after_the_conf_quorum() {
        let mut coin = CommonCoin::new(3);
        let n = 4;
        let t = 1;
        let mut p = FixedProcess::new(ProcessId(0), n, t, Value::ZERO);
        let _ = p.start();
        // deliver 3 EST(0) and 3 EST(1): both values enter bin_values
        for sender in [1, 2, 3] {
            p.deliver(
                Message::new(
                    ProcessId(sender),
                    ProcessId(0),
                    0,
                    MessageKind::Est(Value::ZERO),
                ),
                &mut coin,
            );
            p.deliver(
                Message::new(
                    ProcessId(sender),
                    ProcessId(0),
                    0,
                    MessageKind::Est(Value::ONE),
                ),
                &mut coin,
            );
        }
        // a mixed AUX quorum releases the MMR14 wait, but the fixed process
        // only broadcasts CONF and does not reveal the coin yet
        p.deliver(
            Message::new(ProcessId(1), ProcessId(0), 0, MessageKind::Aux(Value::ZERO)),
            &mut coin,
        );
        p.deliver(
            Message::new(ProcessId(2), ProcessId(0), 0, MessageKind::Aux(Value::ONE)),
            &mut coin,
        );
        let out = p.deliver(
            Message::new(ProcessId(3), ProcessId(0), 0, MessageKind::Aux(Value::ONE)),
            &mut coin,
        );
        assert!(out
            .iter()
            .any(|m| matches!(m.kind, MessageKind::Conf { .. })));
        assert!(!p.has_completed_round(0));
        assert!(!coin.is_revealed(0));
        // two more CONF announcements inside bin_values complete the quorum
        p.deliver(
            Message::new(
                ProcessId(1),
                ProcessId(0),
                0,
                MessageKind::Conf {
                    zero: true,
                    one: true,
                },
            ),
            &mut coin,
        );
        assert!(!p.has_completed_round(0));
        p.deliver(
            Message::new(
                ProcessId(2),
                ProcessId(0),
                0,
                MessageKind::Conf {
                    zero: false,
                    one: true,
                },
            ),
            &mut coin,
        );
        assert!(p.has_completed_round(0));
        assert!(coin.is_revealed(0));
    }

    #[test]
    fn mmr14_releases_on_any_mixed_quorum() {
        let mut coin = CommonCoin::new(3);
        let mut p = Mmr14Process::new(ProcessId(0), 4, 1, Value::ZERO);
        let _ = p.start();
        for sender in [1, 2, 3] {
            p.deliver(
                Message::new(
                    ProcessId(sender),
                    ProcessId(0),
                    0,
                    MessageKind::Est(Value::ZERO),
                ),
                &mut coin,
            );
            p.deliver(
                Message::new(
                    ProcessId(sender),
                    ProcessId(0),
                    0,
                    MessageKind::Est(Value::ONE),
                ),
                &mut coin,
            );
        }
        p.deliver(
            Message::new(ProcessId(1), ProcessId(0), 0, MessageKind::Aux(Value::ZERO)),
            &mut coin,
        );
        p.deliver(
            Message::new(ProcessId(2), ProcessId(0), 0, MessageKind::Aux(Value::ONE)),
            &mut coin,
        );
        p.deliver(
            Message::new(ProcessId(3), ProcessId(0), 0, MessageKind::Aux(Value::ONE)),
            &mut coin,
        );
        // three distinct senders with accepted values: the round completes
        // and the coin is revealed
        assert!(p.has_completed_round(0));
        assert!(coin.is_revealed(0));
    }
}
