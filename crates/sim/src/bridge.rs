//! Process-level execution bridge between the simulator and the checker's
//! counter-system semantics.
//!
//! The checker reasons about *counter abstractions*: a configuration only
//! records how many automata occupy each location.  This module explodes a
//! [`Configuration`] back into individual automaton copies and executes the
//! threshold-automata rules process by process, evaluating guards directly
//! over the per-round variable rows via [`ccta::Guard::holds`] — a code
//! path entirely independent of `cccounter`'s compiled guard bounds.
//! Because the automata are anonymous and identical, every process-level
//! execution projects onto a counter-system execution and vice versa, so
//! the two semantics must witness exactly the same behaviours.  That makes
//! the bridge a third oracle next to the `reference` engine and schedule
//! replay:
//!
//! * [`simulate`] drives seeded fair or adversarial runs and must never
//!   reach a configuration violating a property the checker proved safe;
//! * [`replay_schedule`] re-executes a checker counterexample step by step
//!   at the process level and must reproduce the exact violating
//!   configuration.

use cccounter::{Configuration, CounterSystem, Schedule};
use ccta::{LocId, ModelKind, RuleId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Why a process-level execution could not follow a counter-system step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BridgeError {
    /// No automaton copy occupies the rule's source location in the step's
    /// round.
    NoProcessAt {
        /// The schedule position.
        step: usize,
        /// The rule that could not fire.
        rule: RuleId,
        /// The round it was scheduled in.
        round: u32,
    },
    /// The rule's guard does not hold over the process-level variable row.
    GuardFails {
        /// The schedule position.
        step: usize,
        /// The guarded rule.
        rule: RuleId,
        /// The round it was scheduled in.
        round: u32,
    },
    /// The scheduled branch index does not exist on the rule.
    NoSuchBranch {
        /// The schedule position.
        step: usize,
        /// The rule.
        rule: RuleId,
        /// The out-of-range branch index.
        branch: usize,
    },
}

impl fmt::Display for BridgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BridgeError::NoProcessAt { step, rule, round } => {
                write!(
                    f,
                    "step {step}: no process at source of {rule:?} in round {round}"
                )
            }
            BridgeError::GuardFails { step, rule, round } => {
                write!(f, "step {step}: guard of {rule:?} fails in round {round}")
            }
            BridgeError::NoSuchBranch { step, rule, branch } => {
                write!(f, "step {step}: {rule:?} has no branch {branch}")
            }
        }
    }
}

impl std::error::Error for BridgeError {}

/// One enabled process-level move: a specific automaton copy firing a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Index of the automaton copy in the execution.
    pub proc: usize,
    /// The rule it fires.
    pub rule: RuleId,
    /// The round the copy currently executes in.
    pub round: u32,
}

/// A process-level execution of a counter system: every modelled automaton
/// copy is tracked individually as a `(location, round)` state, with one
/// shared variable row per active round.
pub struct TaExecution<'a> {
    sys: &'a CounterSystem,
    procs: Vec<(LocId, u32)>,
    vars: Vec<Vec<u64>>,
}

impl<'a> TaExecution<'a> {
    /// Explodes a counter-system configuration into individual automaton
    /// copies (in location order, lowest round first).
    pub fn start(sys: &'a CounterSystem, cfg: &Configuration) -> Self {
        let num_vars = sys.model().vars().len();
        let mut procs = Vec::new();
        let mut vars = Vec::new();
        let rounds = cfg.max_active_round().map_or(0, |r| r + 1).max(1);
        for round in 0..rounds {
            if let Some(counters) = cfg.counters_slice(round) {
                for (loc, &count) in counters.iter().enumerate() {
                    for _ in 0..count {
                        procs.push((LocId(loc), round));
                    }
                }
            }
            vars.push(
                cfg.vars_slice(round)
                    .map_or_else(|| vec![0; num_vars], <[u64]>::to_vec),
            );
        }
        TaExecution { sys, procs, vars }
    }

    /// The underlying counter system.
    pub fn system(&self) -> &CounterSystem {
        self.sys
    }

    /// Aggregates the process states back into a counter-system
    /// configuration (the inverse of [`TaExecution::start`]).
    pub fn configuration(&self) -> Configuration {
        let model = self.sys.model();
        let mut cfg = Configuration::zero(model.locations().len(), model.vars().len());
        for &(loc, round) in &self.procs {
            cfg.add_counter(loc, round, 1);
        }
        for (round, row) in self.vars.iter().enumerate() {
            for (var, &value) in row.iter().enumerate() {
                if value > 0 {
                    cfg.set_var(ccta::VarId(var), round as u32, value);
                }
            }
        }
        cfg.trim();
        cfg
    }

    fn ensure_round(&mut self, round: u32) {
        let num_vars = self.sys.model().vars().len();
        while self.vars.len() <= round as usize {
            self.vars.push(vec![0; num_vars]);
        }
    }

    /// Whether `rule` is enabled for the copy at `(state.0, state.1)`:
    /// its guard, evaluated independently over the process-level variable
    /// row, holds.
    fn rule_enabled(&self, rule: RuleId, round: u32) -> bool {
        let r = self.sys.model().rule(rule);
        r.guard().is_true()
            || self
                .vars
                .get(round as usize)
                .is_some_and(|row| r.guard().holds(row, self.sys.params().values()))
    }

    /// All enabled progress moves (self-loop rules are excluded — they
    /// never change the configuration and would make every execution
    /// non-terminating).
    pub fn enabled_moves(&self) -> Vec<Move> {
        let model = self.sys.model();
        let mut moves = Vec::new();
        for (proc, &(loc, round)) in self.procs.iter().enumerate() {
            for rule in model.rules_from(loc) {
                if !model.rule(rule).is_self_loop() && self.rule_enabled(rule, round) {
                    moves.push(Move { proc, rule, round });
                }
            }
        }
        moves
    }

    /// Fires one branch of an enabled move: the copy transitions to the
    /// branch target (advancing a round only on multi-round round
    /// switches, mirroring the counter semantics) and the rule's update
    /// increments the variable row of the move's round.
    pub fn fire(&mut self, m: Move, branch: usize) {
        let model = self.sys.model();
        let rule = model.rule(m.rule);
        let to = rule.branches()[branch].to;
        let dest_round = if model.kind() == ModelKind::MultiRound && rule.is_round_switch() {
            m.round + 1
        } else {
            m.round
        };
        self.ensure_round(dest_round);
        self.procs[m.proc] = (to, dest_round);
        for &(var, amount) in rule.update().increments() {
            self.vars[m.round as usize][var.0] += amount;
        }
    }
}

/// How [`simulate`] resolves scheduling freedom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimPolicy {
    /// Uniformly random over enabled moves and coin branches.
    Fair,
    /// Prefers moves (and coin branches) that steer automata into the given
    /// target locations, falling back to fair choice when none applies —
    /// a cheap adversary pushing executions toward forbidden regions.
    Adversarial(Vec<LocId>),
}

/// A seeded process-level run: the visited configurations (aggregated back
/// into counter form after every step, `configs[0]` being the start) and
/// whether the run ended in a terminal configuration.
#[derive(Debug, Clone)]
pub struct SimTrace {
    /// The visited configurations, starting configuration first.
    pub configs: Vec<Configuration>,
    /// True if no progress move was enabled when the run stopped.
    pub terminal: bool,
}

/// Runs the automaton process by process from `start` for up to
/// `max_steps` steps under the given policy.  Deterministic in
/// `(start, policy, seed)`.
pub fn simulate(
    sys: &CounterSystem,
    start: &Configuration,
    policy: &SimPolicy,
    seed: u64,
    max_steps: usize,
) -> SimTrace {
    let mut exec = TaExecution::start(sys, start);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut configs = vec![exec.configuration()];
    for _ in 0..max_steps {
        let moves = exec.enabled_moves();
        if moves.is_empty() {
            return SimTrace {
                configs,
                terminal: true,
            };
        }
        let model = exec.system().model();
        let m = match policy {
            SimPolicy::Fair => moves[rng.gen_range(0..moves.len())],
            SimPolicy::Adversarial(targets) => {
                let steered: Vec<Move> = moves
                    .iter()
                    .copied()
                    .filter(|m| {
                        model
                            .rule(m.rule)
                            .branches()
                            .iter()
                            .any(|b| targets.contains(&b.to))
                    })
                    .collect();
                if steered.is_empty() {
                    moves[rng.gen_range(0..moves.len())]
                } else {
                    steered[rng.gen_range(0..steered.len())]
                }
            }
        };
        let branches = model.rule(m.rule).branches();
        let branch = if branches.len() == 1 {
            0
        } else {
            match policy {
                SimPolicy::Fair => rng.gen_range(0..branches.len()),
                SimPolicy::Adversarial(targets) => branches
                    .iter()
                    .position(|b| targets.contains(&b.to))
                    .unwrap_or_else(|| rng.gen_range(0..branches.len())),
            }
        };
        exec.fire(m, branch);
        configs.push(exec.configuration());
    }
    SimTrace {
        configs,
        terminal: false,
    }
}

/// Replays a checker counterexample schedule at the process level.
///
/// Each step picks the lowest-indexed automaton copy occupying the rule's
/// source location in the scheduled round, re-validates the guard over the
/// process-level variable row, and fires the scheduled branch.  Returns the
/// aggregated configuration after every step (`result[0]` is the start), so
/// callers can compare against `Schedule::apply`'s counter-semantics path
/// configuration by configuration.
pub fn replay_schedule(
    sys: &CounterSystem,
    start: &Configuration,
    schedule: &Schedule,
) -> Result<Vec<Configuration>, BridgeError> {
    let mut exec = TaExecution::start(sys, start);
    let mut configs = vec![exec.configuration()];
    for (step, s) in schedule.steps().iter().enumerate() {
        let rule = sys.model().rule(s.action.rule);
        let proc = exec
            .procs
            .iter()
            .position(|&(loc, round)| loc == rule.from() && round == s.action.round)
            .ok_or(BridgeError::NoProcessAt {
                step,
                rule: s.action.rule,
                round: s.action.round,
            })?;
        if !exec.rule_enabled(s.action.rule, s.action.round) {
            return Err(BridgeError::GuardFails {
                step,
                rule: s.action.rule,
                round: s.action.round,
            });
        }
        if s.branch >= rule.branches().len() {
            return Err(BridgeError::NoSuchBranch {
                step,
                rule: s.action.rule,
                branch: s.branch,
            });
        }
        exec.fire(
            Move {
                proc,
                rule: s.action.rule,
                round: s.action.round,
            },
            s.branch,
        );
        configs.push(exec.configuration());
    }
    Ok(configs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccta::env::ParamValuation;
    use ccta::prelude::*;

    fn tiny_system() -> CounterSystem {
        let env = ccta::env::byzantine_common_coin_env(2);
        let mut b = SystemBuilder::new("bridge-tiny", env);
        let v0 = b.shared_var("v0");
        let cc0 = b.coin_var("cc0");
        let cc1 = b.coin_var("cc1");
        let j0 = b.process_location("J0", LocClass::Border, Some(BinValue::Zero));
        let j1 = b.process_location("J1", LocClass::Border, Some(BinValue::One));
        let i0 = b.process_location("I0", LocClass::Initial, Some(BinValue::Zero));
        let i1 = b.process_location("I1", LocClass::Initial, Some(BinValue::One));
        let e0 = b.process_location("E0", LocClass::Final, Some(BinValue::Zero));
        let e1 = b.process_location("E1", LocClass::Final, Some(BinValue::One));
        b.start_rule(j0, i0);
        b.start_rule(j1, i1);
        let k = b.env().num_params();
        b.rule("r0", i0, e0, Guard::top(), Update::increment(v0));
        b.rule(
            "r1",
            i1,
            e1,
            Guard::ge(v0, LinearExpr::constant(k, 1)),
            Update::none(),
        );
        b.round_switch(e0, j0);
        b.round_switch(e1, j1);
        let jc = b.coin_location("JC", LocClass::Border, None);
        let ic = b.coin_location("IC", LocClass::Initial, None);
        let h0 = b.coin_location("H0", LocClass::Intermediate, None);
        let h1 = b.coin_location("H1", LocClass::Intermediate, None);
        let c0 = b.coin_location("C0", LocClass::Final, Some(BinValue::Zero));
        let c1 = b.coin_location("C1", LocClass::Final, Some(BinValue::One));
        b.start_rule(jc, ic);
        b.coin_toss(
            "toss",
            ic,
            vec![(h0, Probability::HALF), (h1, Probability::HALF)],
            Guard::top(),
            Update::none(),
        );
        b.rule("publish0", h0, c0, Guard::top(), Update::increment(cc0));
        b.rule("publish1", h1, c1, Guard::top(), Update::increment(cc1));
        b.round_switch(c0, jc);
        b.round_switch(c1, jc);
        let model = b.build().unwrap().single_round().unwrap();
        CounterSystem::new(model, ParamValuation::new(vec![3, 1, 1, 1])).unwrap()
    }

    #[test]
    fn start_and_aggregate_round_trip() {
        let sys = tiny_system();
        for cfg in sys.round_start_configurations() {
            let exec = TaExecution::start(&sys, &cfg);
            assert_eq!(exec.configuration(), cfg);
        }
    }

    #[test]
    fn guarded_rule_waits_for_its_threshold() {
        let sys = tiny_system();
        let model = sys.model();
        let i1 = model.location_id("I1").unwrap();
        let r1 = model.rule_id("r1").unwrap();
        let mut cfg = sys.empty_configuration();
        cfg.set_counter(i1, 0, 1);
        let exec = TaExecution::start(&sys, &cfg);
        assert!(
            !exec.enabled_moves().iter().any(|m| m.rule == r1),
            "r1 must be blocked while v0 = 0"
        );
        cfg.set_var(model.var_id("v0").unwrap(), 0, 1);
        let exec = TaExecution::start(&sys, &cfg);
        assert!(exec.enabled_moves().iter().any(|m| m.rule == r1));
    }

    #[test]
    fn fair_simulation_matches_counter_semantics_stepwise() {
        let sys = tiny_system();
        let start = &sys.round_start_configurations()[0];
        let trace = simulate(&sys, start, &SimPolicy::Fair, 7, 50);
        assert!(trace.configs.len() > 1);
        // every visited configuration must be reachable in the counter
        // semantics: replay cross-checks this below; here we at least pin
        // conservation of the automata population
        let procs = sys.num_processes() + sys.num_coins();
        for cfg in &trace.configs {
            let total: u64 = (0..=cfg.max_active_round().unwrap_or(0))
                .map(|r| cfg.total_in_round(r))
                .sum();
            assert_eq!(total, procs);
        }
    }

    #[test]
    fn simulation_is_deterministic_in_the_seed() {
        let sys = tiny_system();
        let start = &sys.round_start_configurations()[0];
        let a = simulate(&sys, start, &SimPolicy::Fair, 99, 40);
        let b = simulate(&sys, start, &SimPolicy::Fair, 99, 40);
        assert_eq!(a.configs, b.configs);
    }

    #[test]
    fn replay_follows_a_counter_schedule_exactly() {
        let sys = tiny_system();
        let start = sys.round_start_configurations()[0].clone();
        // drive the counter semantics a few greedy steps, then replay
        let mut cfg = start.clone();
        let mut schedule = Schedule::new();
        for _ in 0..6 {
            let actions = sys.progress_actions(&cfg);
            let Some(&action) = actions.iter().find(|a| sys.model().rule(a.rule).is_dirac()) else {
                break;
            };
            cfg = sys.apply(&cfg, action, 0).unwrap();
            schedule.push(cccounter::ScheduledStep::dirac(action));
        }
        assert!(!schedule.is_empty());
        let path = schedule.apply(&sys, &start).unwrap();
        let replayed = replay_schedule(&sys, &start, &schedule).unwrap();
        assert_eq!(replayed.len(), path.configs().len());
        for (mine, theirs) in replayed.iter().zip(path.configs()) {
            assert_eq!(mine, theirs);
        }
    }

    #[test]
    fn replay_rejects_inapplicable_schedules() {
        let sys = tiny_system();
        let model = sys.model();
        let r1 = model.rule_id("r1").unwrap();
        let start = sys.round_start_configurations()[0].clone();
        // r1 is guarded on v0 >= 1, which no start configuration satisfies
        let schedule = Schedule::from_actions([cccounter::Action::new(r1, 0)]);
        match replay_schedule(&sys, &start, &schedule) {
            Err(BridgeError::NoProcessAt { .. }) | Err(BridgeError::GuardFails { .. }) => {}
            other => panic!("expected a bridge error, got {other:?}"),
        }
    }
}
