//! Fair random scheduling of a protocol execution.
//!
//! This runner measures the number of rounds until every correct process
//! decides under a fair (non-adversarial) scheduler: the "expected four
//! rounds" analysis of Sect. II.  Byzantine processes remain silent, which a
//! fair scheduler tolerates (their messages are simply never sent).

use crate::coin::CommonCoin;
use crate::network::Network;
use crate::protocol::{ConsensusProcess, Process, ProtocolKind};
use crate::types::{ProcessId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The result of a fair run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairRunReport {
    /// The decided value of every correct process (in id order).
    pub decisions: Vec<Option<Value>>,
    /// The round in which each correct process decided.
    pub decision_rounds: Vec<Option<u32>>,
    /// Number of messages delivered.
    pub delivered_messages: usize,
}

impl FairRunReport {
    /// Whether every correct process decided.
    pub fn all_decided(&self) -> bool {
        self.decisions.iter().all(|d| d.is_some())
    }

    /// Whether all decided processes agree.
    pub fn agreement(&self) -> bool {
        let mut decided = self.decisions.iter().flatten();
        match decided.next() {
            None => true,
            Some(first) => decided.all(|d| d == first),
        }
    }

    /// The latest round in which some process decided.
    pub fn last_decision_round(&self) -> Option<u32> {
        self.decision_rounds.iter().flatten().copied().max()
    }
}

/// Runs `n - t` correct processes with the given inputs under a fair random
/// scheduler until every process has decided (or `max_deliveries` messages
/// have been delivered).
pub fn run_fair(
    kind: ProtocolKind,
    n: usize,
    t: usize,
    inputs: &[Value],
    seed: u64,
    max_deliveries: usize,
) -> FairRunReport {
    assert_eq!(inputs.len(), n - t, "one input per correct process");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coin = CommonCoin::new(seed.wrapping_mul(0x5851_F42D_4C95_7F2D));
    let mut processes: Vec<Process> = inputs
        .iter()
        .enumerate()
        .map(|(i, &input)| Process::new(ProcessId(i), kind, n, t, input))
        .collect();
    let mut network = Network::new();
    for p in &mut processes {
        let msgs = p.start();
        network.send_all(msgs);
    }
    // messages addressed to (silent) Byzantine processes are dropped
    for byz in (n - t)..n {
        network.drop_addressed_to(ProcessId(byz));
    }

    while network.delivered_count() < max_deliveries
        && processes.iter().any(|p| p.decided().is_none())
        && !network.is_empty()
    {
        let idx = rng.gen_range(0..network.len());
        let msg = network.deliver_at(idx);
        let out = processes[msg.to.0].deliver(msg, &mut coin);
        network.send_all(out);
        for byz in (n - t)..n {
            network.drop_addressed_to(ProcessId(byz));
        }
    }

    FairRunReport {
        decisions: processes.iter().map(|p| p.decided()).collect(),
        decision_rounds: processes.iter().map(|p| p.decided_round()).collect(),
        delivered_messages: network.delivered_count(),
    }
}

/// Runs many fair executions and returns the average round (1-based) in which
/// the last correct process decided — the quantity the paper's "expected four
/// rounds" argument is about.
pub fn average_decision_round(
    kind: ProtocolKind,
    n: usize,
    t: usize,
    inputs: &[Value],
    runs: u64,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    let mut counted = 0u64;
    for i in 0..runs {
        let report = run_fair(kind, n, t, inputs, seed.wrapping_add(i), 200_000);
        if let Some(round) = report.last_decision_round() {
            total += (round + 1) as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        f64::INFINITY
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_runs_terminate_and_agree_for_both_protocols() {
        for kind in [ProtocolKind::Mmr14, ProtocolKind::Fixed] {
            for seed in 0..5u64 {
                let report = run_fair(
                    kind,
                    4,
                    1,
                    &[Value::ZERO, Value::ONE, Value::ZERO],
                    seed,
                    100_000,
                );
                assert!(report.all_decided(), "{kind:?} seed {seed}");
                assert!(report.agreement(), "{kind:?} seed {seed}");
            }
        }
    }

    #[test]
    fn unanimous_inputs_respect_validity() {
        for kind in [ProtocolKind::Mmr14, ProtocolKind::Fixed] {
            let report = run_fair(kind, 4, 1, &[Value::ONE; 3], 11, 100_000);
            assert!(report.all_decided());
            assert!(report.decisions.iter().all(|d| *d == Some(Value::ONE)));
        }
    }

    #[test]
    fn expected_decision_round_is_small_under_fair_scheduling() {
        let avg = average_decision_round(
            ProtocolKind::Mmr14,
            4,
            1,
            &[Value::ZERO, Value::ONE, Value::ZERO],
            20,
            123,
        );
        // the paper's analysis gives an expectation of at most four rounds
        assert!(avg < 6.0, "average decision round {avg}");
    }

    #[test]
    fn larger_systems_also_terminate() {
        let report = run_fair(
            ProtocolKind::Fixed,
            7,
            2,
            &[
                Value::ZERO,
                Value::ONE,
                Value::ZERO,
                Value::ONE,
                Value::ZERO,
            ],
            3,
            300_000,
        );
        assert!(report.all_decided());
        assert!(report.agreement());
    }
}
