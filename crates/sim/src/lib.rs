//! A Byzantine asynchronous message-passing (BAMP) simulator for common-coin
//! consensus protocols.
//!
//! This crate is the executable-protocol substrate of the reproduction: it
//! implements the computation model `BAMP_{n,t}[n > 3t, CC]` of Sect. I of
//! the paper (asynchronous reliable point-to-point network, up to `t`
//! Byzantine processes, a strong common coin) together with
//!
//! * [`protocol::Mmr14Process`] — the MMR14 protocol of Fig. 1, verbatim;
//! * [`protocol::FixedProcess`] — the repaired protocol (Miller18-style
//!   strengthened `⊥` condition) used as the control;
//! * [`runner`] — fair random scheduling, measuring the number of rounds to
//!   decision (the "expected four rounds" analysis of Sect. II);
//! * [`attack`] — the adaptive-adversary schedule of Sect. II that keeps
//!   MMR14 from ever terminating while the fixed protocol still decides.

pub mod attack;
pub mod coin;
pub mod network;
pub mod protocol;
pub mod runner;
pub mod types;

pub use attack::{run_adaptive_attack, AttackOutcome};
pub use coin::CommonCoin;
pub use network::Network;
pub use protocol::{ConsensusProcess, FixedProcess, Mmr14Process, Process, ProtocolKind};
pub use runner::{average_decision_round, run_fair, FairRunReport};
pub use types::{Message, MessageKind, ProcessId, Value};
