//! The strong common coin.
//!
//! The coin delivers the same unbiased random bit `b_r` to every process that
//! queries round `r` (an `ε`-good coin with `ε = 1/2`, i.e. a *strong* coin).
//! The adaptive adversary of Sect. II learns the coin value of a round as
//! soon as the first correct process queries it; the coin therefore records
//! which rounds have been revealed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::types::Value;

/// A strong common coin shared by all correct processes.
#[derive(Debug, Clone)]
pub struct CommonCoin {
    seed: u64,
    drawn: HashMap<u32, Value>,
    revealed: Vec<u32>,
}

impl CommonCoin {
    /// Creates a coin whose bit sequence is derived from `seed`.
    pub fn new(seed: u64) -> Self {
        CommonCoin {
            seed,
            drawn: HashMap::new(),
            revealed: Vec::new(),
        }
    }

    /// Queries the coin for a round (the `s ← random()` step of Fig. 1).
    /// The first query of a round reveals its value to the adversary.
    pub fn query(&mut self, round: u32) -> Value {
        let value = self.value_of(round);
        if !self.revealed.contains(&round) {
            self.revealed.push(round);
        }
        value
    }

    /// The coin value of a round, *without* revealing it (used internally and
    /// by the adversary once the round has been revealed).
    fn value_of(&mut self, round: u32) -> Value {
        let seed = self.seed;
        *self.drawn.entry(round).or_insert_with(|| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Value(rng.gen_range(0..=1))
        })
    }

    /// Whether the coin of a round has already been queried by some correct
    /// process (and is therefore known to the adaptive adversary).
    pub fn is_revealed(&self, round: u32) -> bool {
        self.revealed.contains(&round)
    }

    /// The coin value of a revealed round, as observed by the adversary.
    pub fn revealed_value(&mut self, round: u32) -> Option<Value> {
        if self.is_revealed(round) {
            Some(self.value_of(round))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coin_is_common_and_deterministic_per_round() {
        let mut a = CommonCoin::new(42);
        let mut b = CommonCoin::new(42);
        for round in 0..20 {
            assert_eq!(a.query(round), b.query(round));
        }
        // querying again returns the same value
        assert_eq!(a.query(3), b.query(3));
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut coin = CommonCoin::new(7);
        let ones: u32 = (0..1000).map(|r| coin.query(r).0 as u32).sum();
        assert!(ones > 400 && ones < 600, "ones = {ones}");
    }

    #[test]
    fn reveal_tracking() {
        let mut coin = CommonCoin::new(1);
        assert!(!coin.is_revealed(5));
        assert_eq!(coin.revealed_value(5), None);
        let v = coin.query(5);
        assert!(coin.is_revealed(5));
        assert_eq!(coin.revealed_value(5), Some(v));
        assert!(!coin.is_revealed(6));
    }
}
