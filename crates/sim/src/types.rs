//! Basic types of the message-passing model.

use std::fmt;

/// A binary consensus value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(pub u8);

impl Value {
    /// Value 0.
    pub const ZERO: Value = Value(0);
    /// Value 1.
    pub const ONE: Value = Value(1);

    /// The other value.
    pub fn flip(self) -> Value {
        Value(1 - self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a process (correct or Byzantine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub usize);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The message types of MMR14 and its fixed variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// `EST` message of the binary-value broadcast.
    Est(Value),
    /// `AUX` message carrying one value of `bin_values`.
    Aux(Value),
    /// `CONF` message of the repaired protocol, carrying the sender's
    /// `values` set (the fix deployed in HoneyBadger/Dumbo).
    Conf {
        /// Whether 0 is in the announced set.
        zero: bool,
        /// Whether 1 is in the announced set.
        one: bool,
    },
}

/// A point-to-point message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Message {
    /// Sender.
    pub from: ProcessId,
    /// Receiver.
    pub to: ProcessId,
    /// Round the message belongs to.
    pub round: u32,
    /// Payload.
    pub kind: MessageKind,
}

impl Message {
    /// Creates a message.
    pub fn new(from: ProcessId, to: ProcessId, round: u32, kind: MessageKind) -> Self {
        Message {
            from,
            to,
            round,
            kind,
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            MessageKind::Est(v) => write!(f, "EST({v}) {}->{} r{}", self.from, self.to, self.round),
            MessageKind::Aux(v) => write!(f, "AUX({v}) {}->{} r{}", self.from, self.to, self.round),
            MessageKind::Conf { zero, one } => write!(
                f,
                "CONF({}{}) {}->{} r{}",
                if zero { "0" } else { "" },
                if one { "1" } else { "" },
                self.from,
                self.to,
                self.round
            ),
        }
    }
}

/// Broadcasts a payload from `from` to every process in `0..n`.
pub fn broadcast(from: ProcessId, n: usize, round: u32, kind: MessageKind) -> Vec<Message> {
    (0..n)
        .map(|to| Message::new(from, ProcessId(to), round, kind))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_flip() {
        assert_eq!(Value::ZERO.flip(), Value::ONE);
        assert_eq!(Value::ONE.flip(), Value::ZERO);
        assert_eq!(format!("{}", Value::ONE), "1");
    }

    #[test]
    fn broadcast_targets_every_process() {
        let msgs = broadcast(ProcessId(2), 4, 3, MessageKind::Est(Value::ZERO));
        assert_eq!(msgs.len(), 4);
        assert!(msgs.iter().all(|m| m.from == ProcessId(2) && m.round == 3));
        assert_eq!(msgs[1].to, ProcessId(1));
        assert!(format!("{}", msgs[0]).contains("EST(0)"));
    }
}
