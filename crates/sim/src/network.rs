//! The asynchronous reliable point-to-point network.
//!
//! Messages that have been sent stay in flight until the scheduler (fair or
//! adversarial) picks them for delivery; the network never loses, duplicates
//! or modifies messages, matching the `BAMP` model of Sect. I.

use crate::types::{Message, ProcessId};

/// The multiset of in-flight messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Network {
    inflight: Vec<Message>,
    delivered: usize,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Sends a batch of messages.
    pub fn send_all(&mut self, msgs: impl IntoIterator<Item = Message>) {
        self.inflight.extend(msgs);
    }

    /// Number of in-flight messages.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether no message is in flight.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Total number of messages delivered so far.
    pub fn delivered_count(&self) -> usize {
        self.delivered
    }

    /// The in-flight messages (scheduler view).
    pub fn inflight(&self) -> &[Message] {
        &self.inflight
    }

    /// Delivers (removes and returns) the in-flight message at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn deliver_at(&mut self, index: usize) -> Message {
        self.delivered += 1;
        self.inflight.swap_remove(index)
    }

    /// Delivers the first in-flight message matching the predicate, if any.
    pub fn deliver_matching(&mut self, mut pred: impl FnMut(&Message) -> bool) -> Option<Message> {
        let idx = self.inflight.iter().position(&mut pred)?;
        Some(self.deliver_at(idx))
    }

    /// Whether some in-flight message matches the predicate.
    pub fn has_matching(&self, mut pred: impl FnMut(&Message) -> bool) -> bool {
        self.inflight.iter().any(&mut pred)
    }

    /// Drops every in-flight message addressed to the given process (used for
    /// messages addressed to Byzantine processes, whose behaviour is chosen
    /// by the adversary anyway).
    pub fn drop_addressed_to(&mut self, to: ProcessId) {
        self.inflight.retain(|m| m.to != to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MessageKind, Value};

    fn msg(from: usize, to: usize) -> Message {
        Message::new(
            ProcessId(from),
            ProcessId(to),
            0,
            MessageKind::Est(Value::ZERO),
        )
    }

    #[test]
    fn send_and_deliver() {
        let mut net = Network::new();
        assert!(net.is_empty());
        net.send_all(vec![msg(0, 1), msg(0, 2), msg(1, 2)]);
        assert_eq!(net.len(), 3);
        let delivered = net.deliver_matching(|m| m.to == ProcessId(2)).unwrap();
        assert_eq!(delivered.to, ProcessId(2));
        assert_eq!(net.len(), 2);
        assert_eq!(net.delivered_count(), 1);
        assert!(net.has_matching(|m| m.to == ProcessId(1)));
        assert!(net.deliver_matching(|m| m.to == ProcessId(9)).is_none());
    }

    #[test]
    fn drop_addressed_to_byzantine() {
        let mut net = Network::new();
        net.send_all(vec![msg(0, 3), msg(0, 1), msg(2, 3)]);
        net.drop_addressed_to(ProcessId(3));
        assert_eq!(net.len(), 1);
        assert_eq!(net.inflight()[0].to, ProcessId(1));
    }
}
